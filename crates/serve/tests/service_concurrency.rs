//! Concurrency and identity guarantees of the compile service.
//!
//! The acceptance bar for the service layer: responses are
//! byte-identical to the single-shot job layer on the same document,
//! the cache-hit path is byte-identical to the cold path, admission
//! control rejects (typed, not hanging) at the queue cap, and shutdown
//! drains in-flight work cleanly.

use na_pipeline::handle_json;
use na_serve::{compact_json, serve_lines, CompileService, ServeConfig, Submission, SubmitError};

fn config(workers: usize, queue_cap: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_cap,
        cache_budget_bytes: 32 << 20,
        ..ServeConfig::default()
    }
}

/// A v1 job document compiling one circuit on the small mixed preset.
fn job_doc(circuit_name: &str, qasm_body: &str, request_id: Option<&str>) -> String {
    let id = match request_id {
        Some(id) => format!("\"request_id\": \"{id}\",\n"),
        None => String::new(),
    };
    format!(
        "{{\n{id}  \"version\": 1,\n  \
         \"target\": {{\"preset\": \"mixed\", \"lattice_side\": 5, \"num_atoms\": 12}},\n  \
         \"mapping\": {{\"mode\": \"hybrid\", \"alpha\": 1.0}},\n  \
         \"circuits\": [{{\"name\": \"{circuit_name}\", \"qasm\": \"{qasm_body}\"}}]\n}}\n",
    )
}

fn bell_qasm() -> &'static str {
    "OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];\\n"
}

fn chain_qasm(extra_h: usize) -> String {
    let mut body = String::from("OPENQASM 2.0;\\nqreg q[3];\\n");
    for _ in 0..extra_h {
        body.push_str("h q[0];\\n");
    }
    body.push_str("cx q[0],q[1];\\ncx q[1],q[2];\\n");
    body
}

/// Blanks the two wall-clock stamps a response embeds
/// (`map_runtime_ms`, `total_runtime_ms`) so byte comparisons test
/// content, not timing.
fn normalize(response: &str) -> String {
    let mut out = response.to_owned();
    for key in [
        "\"map_runtime_ms\":",
        "\"total_runtime_ms\":",
        "\"map_us\":",
        "\"schedule_us\":",
        "\"lower_us\":",
    ] {
        let mut from = 0;
        while let Some(at) = out[from..].find(key) {
            let start = from + at + key.len();
            let end = start + out[start..].find([',', '}']).expect("number terminates");
            out.replace_range(start..end, "0");
            from = start;
        }
    }
    out
}

#[test]
fn identical_and_distinct_requests_across_threads() {
    let service = CompileService::start(config(2, 32));
    let identical_doc = job_doc("bell", bell_qasm(), None);
    let distinct_docs: Vec<String> = (1..=3)
        .map(|i| job_doc(&format!("chain-{i}"), &chain_qasm(i), None))
        .collect();

    let mut handles = Vec::new();
    for _ in 0..4 {
        let service = service.clone();
        let doc = identical_doc.clone();
        handles.push(std::thread::spawn(move || {
            ("identical", service.submit_wait(&doc).expect("accepted"))
        }));
    }
    for doc in &distinct_docs {
        let service = service.clone();
        let doc = doc.clone();
        handles.push(std::thread::spawn(move || {
            ("distinct", service.submit_wait(&doc).expect("accepted"))
        }));
    }
    let mut identical_responses = Vec::new();
    let mut distinct_responses = Vec::new();
    for handle in handles {
        let (kind, response) = handle.join().expect("no panic");
        match kind {
            "identical" => identical_responses.push(response),
            _ => distinct_responses.push(response),
        }
    }
    service.shutdown();

    // (a) Every response to the identical document is byte-identical —
    // whether it was compiled cold, compiled concurrently, or served
    // from the artifact cache. Warm-scratch reuse never changes bytes.
    for response in &identical_responses[1..] {
        assert_eq!(response, &identical_responses[0]);
    }
    // Each response matches the single-shot job layer on the same
    // document, runtime stamps aside.
    let reference = handle_json(&identical_doc).expect("compiles");
    assert_eq!(
        normalize(&identical_responses[0]),
        normalize(&reference),
        "service response diverged from handle_json"
    );
    // Distinct documents produced distinct, successful artifacts.
    assert_eq!(distinct_responses.len(), 3);
    for response in &distinct_responses {
        assert!(response.contains("\"ok\":true"));
    }
}

#[test]
fn repeated_submission_hits_the_artifact_cache() {
    let service = CompileService::start(config(1, 8));
    let doc = job_doc("bell", bell_qasm(), None);

    let cold = service.submit_wait(&doc).expect("accepted");
    // The second submission must be answered from the cache: same
    // bytes, and the submit path reports it as Cached.
    let warm = match service.submit(&doc).expect("accepted") {
        Submission::Cached(response) => response,
        other => panic!("expected a cache hit, got {other:?}"),
    };
    assert_eq!(cold, warm, "cache-hit bytes diverged from cold compile");

    let metrics = service.metrics_json();
    assert!(
        metrics.contains("\"artifact_cache\":{\"hits\":1,"),
        "expected one artifact-cache hit in {metrics}"
    );
    service.shutdown();
}

#[test]
fn request_ids_are_echoed_without_defeating_the_cache() {
    let service = CompileService::start(config(1, 8));
    let first = service
        .submit_wait(&job_doc("bell", bell_qasm(), Some("client-a")))
        .expect("accepted");
    let second = service
        .submit_wait(&job_doc("bell", bell_qasm(), Some("client-b")))
        .expect("accepted");
    // Different ids, same content: the second submission still hits
    // the cache, and each client gets its own id echoed.
    assert!(first.contains("\"request_id\": \"client-a\""));
    assert!(second.contains("\"request_id\": \"client-b\""));
    assert_eq!(
        service
            .metrics()
            .cache_hits
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // Bytes identical once the echoes are removed.
    assert_eq!(
        first.replace("client-a", ""),
        second.replace("client-b", "")
    );
    service.shutdown();
}

#[test]
fn queue_full_submissions_get_typed_rejection() {
    // No workers: the queue fills deterministically.
    let service = CompileService::start(config(0, 2));
    let pending: Vec<_> = (0..2)
        .map(|i| {
            let doc = job_doc(&format!("chain-{i}"), &chain_qasm(i + 1), None);
            match service.submit(&doc).expect("accepted") {
                Submission::Pending(rx) => rx,
                other => panic!("expected Pending, got {other:?}"),
            }
        })
        .collect();
    assert_eq!(service.queue_depth(), 2);

    let overflow = job_doc("overflow", bell_qasm(), None);
    match service.submit(&overflow) {
        Err(SubmitError::Busy { depth, cap }) => {
            assert_eq!((depth, cap), (2, 2));
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    // Shutdown answers the jobs no worker will ever take with a
    // well-formed shutdown document instead of hanging the clients.
    service.shutdown();
    for rx in pending {
        let doc = rx.recv().expect("answered at shutdown");
        assert!(doc.contains("\"kind\":\"shutdown\""), "got {doc}");
    }
    assert!(matches!(
        service.submit(&overflow),
        Err(SubmitError::ShuttingDown)
    ));
}

#[test]
fn shutdown_drains_in_flight_jobs() {
    let service = CompileService::start(config(2, 16));
    let receivers: Vec<_> = (0..6)
        .map(|i| {
            let doc = job_doc(&format!("drain-{i}"), &chain_qasm(i % 3 + 1), None);
            match service.submit(&doc).expect("accepted") {
                Submission::Pending(rx) => Some(rx),
                Submission::Cached(_) => None,
                other => panic!("unexpected {other:?}"),
            }
        })
        .collect();
    // Close immediately: every queued job must still be compiled (the
    // queue drains before workers exit), not error-documented.
    service.shutdown();
    for rx in receivers.into_iter().flatten() {
        let doc = rx.recv().expect("drained");
        assert!(
            doc.contains("\"ok\":true"),
            "job dropped at shutdown: {doc}"
        );
    }
}

#[test]
fn stdio_transport_answers_one_compact_line_per_request() {
    let service = CompileService::start(config(1, 4));
    // One compact document per line: a valid job, a blank line (to be
    // skipped), and a malformed one.
    let input = format!(
        "{}\n\n{}\n",
        compact_json(&job_doc("bell", bell_qasm(), None)),
        "{\"version\": 99}",
    );
    let mut output = Vec::new();
    let answered =
        serve_lines(&service, input.as_bytes(), &mut output).expect("stdio transport runs");
    service.shutdown();

    assert_eq!(answered, 2);
    let lines: Vec<&str> = std::str::from_utf8(&output)
        .expect("utf-8")
        .lines()
        .collect();
    assert_eq!(lines.len(), 2, "one response line per request line");
    // Line 1: the compile response, compacted but content-identical to
    // the single-shot job layer.
    let reference = compact_json(&handle_json(&job_doc("bell", bell_qasm(), None)).unwrap());
    assert_eq!(normalize(lines[0]), normalize(&reference));
    // Line 2: a well-formed error document for the bad version.
    assert!(
        lines[1].contains("\"kind\":\"request\""),
        "got {}",
        lines[1]
    );
}

#[test]
fn malformed_and_wrong_version_documents_are_answered() {
    let service = CompileService::start(config(1, 4));
    for bad in [
        "this is not json",
        "{\"version\": 99, \"circuits\": []}",
        "{\"version\": 1}",
    ] {
        match service.submit(bad).expect("answered, not rejected") {
            Submission::Invalid(doc) => {
                assert!(doc.contains("\"version\": 1"), "got {doc}");
                assert!(doc.contains("\"ok\": false"), "got {doc}");
                assert!(doc.contains("\"kind\":\"request\""), "got {doc}");
            }
            other => panic!("expected Invalid for {bad:?}, got {other:?}"),
        }
    }
    assert_eq!(
        service
            .metrics()
            .invalid
            .load(std::sync::atomic::Ordering::Relaxed),
        3
    );
    service.shutdown();
}
