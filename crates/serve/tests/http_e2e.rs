//! End-to-end exercise of the hand-rolled HTTP transport with a raw
//! `TcpStream` client: submit → compile → cached resubmit → metrics →
//! liveness → unknown route.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;

use na_serve::{CompileService, HttpServer, ServeConfig};

fn job_doc() -> String {
    String::from(
        "{\n  \"version\": 1,\n  \
         \"target\": {\"preset\": \"mixed\", \"lattice_side\": 5, \"num_atoms\": 12},\n  \
         \"mapping\": {\"mode\": \"hybrid\", \"alpha\": 1.0},\n  \
         \"circuits\": [{\"name\": \"bell\", \
         \"qasm\": \"OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];\\n\"}]\n}\n",
    )
}

/// One request over a fresh connection; returns (status line, headers,
/// body).
fn roundtrip(addr: std::net::SocketAddr, request: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_owned(), headers.to_owned(), body.to_owned())
}

fn post_compile(addr: std::net::SocketAddr, body: &str) -> (String, String, String) {
    roundtrip(
        addr,
        &format!(
            "POST /v1/compile HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        ),
    )
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String, String) {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

#[test]
fn http_server_end_to_end() {
    let service = CompileService::start(ServeConfig {
        workers: 1,
        queue_cap: 8,
        cache_budget_bytes: 32 << 20,
        ..ServeConfig::default()
    });
    let server = HttpServer::bind(service.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("bound");
    let stop = server.stop_handle();
    let accept_loop = std::thread::spawn(move || server.serve());

    // Liveness first.
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "{\"ok\":true}");

    // Cold compile.
    let (status, headers, cold_body) = post_compile(addr, &job_doc());
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(headers.contains("X-Cache: miss"), "headers: {headers}");
    assert!(cold_body.contains("\"ok\":true"));

    // Identical resubmission: served from the artifact cache with
    // byte-identical body.
    let (status, headers, warm_body) = post_compile(addr, &job_doc());
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(headers.contains("X-Cache: hit"), "headers: {headers}");
    assert_eq!(cold_body, warm_body);

    // Malformed document → 400 with a well-formed error document.
    let (status, _, error_body) = post_compile(addr, "not json at all");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(error_body.contains("\"kind\":\"request\""));

    // Metrics reflect the traffic.
    let (status, _, metrics) = get(addr, "/v1/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(metrics.contains("\"completed\":1"), "metrics: {metrics}");
    assert!(
        metrics.contains("\"artifact_cache\":{\"hits\":1,"),
        "metrics: {metrics}"
    );
    assert!(metrics.contains("\"invalid\":1"), "metrics: {metrics}");

    // Unknown route.
    let (status, _, _) = get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    stop.store(true, Ordering::SeqCst);
    accept_loop.join().expect("accept loop exits");
    service.shutdown();
}
