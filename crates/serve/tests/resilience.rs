//! Fault-tolerance guarantees of the compile service.
//!
//! The acceptance bar for the resilience layer: a deterministic
//! [`FaultPlan`] killing workers mid-run still yields one typed reply
//! per request and a self-healed pool whose artifacts are
//! byte-identical to a fault-free run; panics are isolated to their
//! job; deadlines trip both in the queue and inside long compiles with
//! a typed `deadline` reply; unmeetable deadlines are shed at
//! admission; and no cancelled compile ever publishes a partial
//! artifact to the cache.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use na_serve::{CompileService, FaultPlan, ServeConfig, Submission, SubmitError};
use proptest::prelude::*;

fn config(workers: usize, queue_cap: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_cap,
        cache_budget_bytes: 32 << 20,
        ..ServeConfig::default()
    }
}

fn config_with_fault(workers: usize, queue_cap: usize, spec: &str) -> ServeConfig {
    ServeConfig {
        fault: Some(Arc::new(FaultPlan::parse(spec).expect("valid spec"))),
        ..config(workers, queue_cap)
    }
}

/// A v1 job document compiling one circuit on the small mixed preset.
fn job_doc(circuit_name: &str, qasm_body: &str, deadline_ms: Option<u64>) -> String {
    let deadline = match deadline_ms {
        Some(ms) => format!("\"deadline_ms\": {ms},\n  "),
        None => String::new(),
    };
    format!(
        "{{\n  \"version\": 1,\n  \
         \"target\": {{\"preset\": \"mixed\", \"lattice_side\": 5, \"num_atoms\": 12}},\n  \
         \"mapping\": {{\"mode\": \"hybrid\", \"alpha\": 1.0}},\n  \
         {deadline}\"circuits\": [{{\"name\": \"{circuit_name}\", \"qasm\": \"{qasm_body}\"}}]\n}}\n",
    )
}

fn bell_qasm() -> &'static str {
    "OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];\\n"
}

fn chain_qasm(extra_h: usize) -> String {
    let mut body = String::from("OPENQASM 2.0;\\nqreg q[3];\\n");
    for _ in 0..extra_h {
        body.push_str("h q[0];\\n");
    }
    body.push_str("cx q[0],q[1];\\ncx q[1],q[2];\\n");
    body
}

/// A mega-scale document: a 128-qubit layered entangling circuit on a
/// 100×100 lattice — seconds of fault-free compile time, so a
/// millisecond deadline must trip a checkpoint long before completion.
fn mega_doc(deadline_ms: u64) -> String {
    let mut qasm = String::from("OPENQASM 2.0;\\nqreg q[128];\\n");
    for q in 0..128 {
        qasm.push_str(&format!("h q[{q}];\\n"));
    }
    for layer in 0..4 {
        for q in 0..127 {
            qasm.push_str(&format!("cx q[{q}],q[{}];\\n", q + 1));
        }
        qasm.push_str(&format!("h q[{layer}];\\n"));
    }
    format!(
        "{{\n  \"version\": 1,\n  \
         \"target\": {{\"preset\": \"mixed\", \"lattice_side\": 100, \"num_atoms\": 128}},\n  \
         \"mapping\": {{\"mode\": \"hybrid\", \"alpha\": 1.0}},\n  \
         \"deadline_ms\": {deadline_ms},\n  \
         \"circuits\": [{{\"name\": \"qft-scale-128\", \"qasm\": \"{qasm}\"}}]\n}}\n",
    )
}

/// Blanks the wall-clock stamps a response embeds so byte comparisons
/// test content, not timing.
fn normalize(response: &str) -> String {
    let mut out = response.to_owned();
    for key in [
        "\"map_runtime_ms\":",
        "\"total_runtime_ms\":",
        "\"map_us\":",
        "\"schedule_us\":",
        "\"lower_us\":",
    ] {
        let mut from = 0;
        while let Some(at) = out[from..].find(key) {
            let start = from + at + key.len();
            let end = start + out[start..].find([',', '}']).expect("number terminates");
            out.replace_range(start..end, "0");
            from = start;
        }
    }
    out
}

/// Polls `probe` until it returns true or the timeout elapses.
fn wait_for(timeout: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    probe()
}

/// The headline chaos test: a seeded plan kills three workers at fixed
/// points in the compile sequence. Every request still gets exactly
/// one typed reply, the supervisor heals the pool back to strength,
/// and the artifacts the healed service produces are byte-identical to
/// a fault-free run of the same documents.
#[test]
fn scripted_worker_deaths_self_heal_with_identical_artifacts() {
    let docs: Vec<String> = (0..9)
        .map(|i| job_doc(&format!("chaos-{i}"), &chain_qasm(i + 1), None))
        .collect();

    let chaotic = CompileService::start(config_with_fault(2, 32, "kill@1,kill@4,kill@7"));
    let mut killed = Vec::new();
    for (i, doc) in docs.iter().enumerate() {
        let reply = chaotic.submit_wait(doc).expect("admitted");
        // 100% typed replies: success or a typed internal error —
        // never a hang, never a malformed document.
        let ok = reply.contains("\"ok\":true");
        let internal = reply.contains("\"kind\":\"internal\"");
        assert!(ok || internal, "untyped reply for doc {i}: {reply}");
        if internal {
            killed.push(i);
        }
    }
    // Sequential submissions make the compile sequence deterministic:
    // exactly the scripted compiles died.
    assert_eq!(killed, vec![1, 4, 7]);
    let metrics = chaotic.metrics();
    assert_eq!(metrics.worker_panics.load(Ordering::Relaxed), 3);
    assert!(
        wait_for(Duration::from_secs(5), || chaotic.live_workers() == 2),
        "supervisor did not restore the pool: {} live workers",
        chaotic.live_workers()
    );
    assert!(
        wait_for(Duration::from_secs(5), || {
            metrics.worker_restarts.load(Ordering::Relaxed) == 3
        }),
        "expected 3 respawns, saw {}",
        metrics.worker_restarts.load(Ordering::Relaxed)
    );

    // The healed pool answers everything; failed compiles were never
    // cached, so resubmissions compile fresh and succeed.
    let healed: Vec<String> = docs
        .iter()
        .map(|doc| {
            let reply = chaotic.submit_wait(doc).expect("admitted");
            assert!(reply.contains("\"ok\":true"), "after heal: {reply}");
            reply
        })
        .collect();
    chaotic.shutdown();

    let calm = CompileService::start(config(2, 32));
    for (doc, chaotic_reply) in docs.iter().zip(&healed) {
        let calm_reply = calm.submit_wait(doc).expect("admitted");
        assert_eq!(
            normalize(&calm_reply),
            normalize(chaotic_reply),
            "artifact diverged after worker deaths"
        );
    }
    calm.shutdown();
}

#[test]
fn panics_are_isolated_to_their_job_and_the_worker_survives() {
    let service = CompileService::start(config_with_fault(1, 8, "panic@0"));
    let doc = job_doc("isolated", bell_qasm(), None);

    let first = service.submit_wait(&doc).expect("admitted");
    assert!(first.contains("\"kind\":\"internal\""), "got {first}");
    assert!(first.contains("injected fault"), "got {first}");

    // Same single worker, same scratch slot: the pool never restarted,
    // and the panicked compile was not cached, so the retry compiles
    // fresh and succeeds.
    let second = service.submit_wait(&doc).expect("admitted");
    assert!(second.contains("\"ok\":true"), "got {second}");
    let metrics = service.metrics();
    assert_eq!(metrics.worker_panics.load(Ordering::Relaxed), 1);
    assert_eq!(metrics.worker_restarts.load(Ordering::Relaxed), 0);
    assert_eq!(service.live_workers(), 1);
    service.shutdown();
}

/// A 1 ms deadline on a mega-scale compile (128 qubits, 100×100
/// lattice) is answered with a typed `deadline` error at a compile
/// checkpoint — well under the seconds a fault-free compile takes —
/// and nothing partial reaches the artifact cache.
#[test]
fn deadline_trips_inside_a_mega_scale_compile() {
    let service = CompileService::start(config(1, 4));
    let start = Instant::now();
    let reply = service.submit_wait(&mega_doc(1)).expect("admitted");
    let elapsed = start.elapsed();
    assert!(reply.contains("\"kind\":\"deadline\""), "got {reply}");
    assert!(
        elapsed < Duration::from_secs(10),
        "cancellation took {elapsed:?}; checkpoints are not firing"
    );
    assert_eq!(
        service.metrics().deadline_exceeded.load(Ordering::Relaxed),
        1
    );
    // The partial compile never became an artifact.
    let metrics = service.metrics_json();
    assert!(
        metrics.contains("\"insertions\":0"),
        "partial artifact cached: {metrics}"
    );
    service.shutdown();
}

/// A scripted dequeue stall longer than the request's deadline makes
/// the expiry fire *in the queue*: the worker answers with `deadline`
/// without ever building a session or compiling.
#[test]
fn queued_deadline_expires_before_compiling() {
    let service = CompileService::start(config_with_fault(1, 4, "stall=50"));
    let doc = job_doc("expired-in-queue", bell_qasm(), Some(5));
    let reply = service.submit_wait(&doc).expect("admitted");
    assert!(reply.contains("\"kind\":\"deadline\""), "got {reply}");
    let metrics = service.metrics();
    assert_eq!(metrics.deadline_exceeded.load(Ordering::Relaxed), 1);
    // The compile never started: no session was looked up or built.
    assert_eq!(metrics.session_hits.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.session_misses.load(Ordering::Relaxed), 0);
    service.shutdown();
}

/// Deadline-aware admission: once the latency histogram is warm, a
/// deadline that cannot survive the estimated queue wait is shed with
/// a typed `unmeetable` rejection carrying a `retry_after_ms` hint.
#[test]
fn unmeetable_deadlines_are_shed_at_admission() {
    // No workers: the queue holds its depth deterministically.
    let service = CompileService::start(config(0, 4));
    // Warm the histogram: eight observed requests at ~100 ms each.
    for _ in 0..8 {
        service.metrics().latency.record_micros(100_000);
    }
    // One queued job ahead of us.
    let blocker = match service
        .submit(&job_doc("blocker", bell_qasm(), None))
        .expect("admitted")
    {
        Submission::Pending(rx) => rx,
        other => panic!("expected Pending, got {other:?}"),
    };

    let hopeless = job_doc("hopeless", bell_qasm(), Some(10));
    match service.submit(&hopeless) {
        Err(SubmitError::DeadlineUnmeetable {
            deadline_ms,
            estimated_wait_ms,
            retry_after_ms,
        }) => {
            assert_eq!(deadline_ms, 10);
            assert!(estimated_wait_ms > deadline_ms);
            assert_eq!(retry_after_ms, estimated_wait_ms - deadline_ms);
            let doc = SubmitError::DeadlineUnmeetable {
                deadline_ms,
                estimated_wait_ms,
                retry_after_ms,
            }
            .to_json(Some("shed-1"));
            assert!(doc.contains("\"kind\":\"unmeetable\""), "got {doc}");
            assert!(
                doc.contains(&format!("\"retry_after_ms\":{retry_after_ms}")),
                "got {doc}"
            );
            assert!(doc.contains("\"request_id\": \"shed-1\""), "got {doc}");
        }
        other => panic!("expected DeadlineUnmeetable, got {other:?}"),
    }
    assert_eq!(service.metrics().shed_unmeetable.load(Ordering::Relaxed), 1);

    // A generous deadline on the same content is admitted: shedding
    // compares the deadline against the wait, it is not a blanket
    // refusal of deadlines under load.
    let patient = job_doc("patient", bell_qasm(), Some(600_000));
    assert!(matches!(
        service.submit(&patient).expect("admitted"),
        Submission::Pending(_)
    ));

    service.shutdown();
    // Queued-but-never-compiled jobs still get typed shutdown replies.
    let doc = blocker.recv().expect("answered at shutdown");
    assert!(doc.contains("\"kind\":\"shutdown\""), "got {doc}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any circuit shape: an expired deadline yields a typed
    /// `deadline` reply and never publishes to the artifact cache
    /// (resubmission misses), while the same content without a
    /// deadline compiles, caches, and round-trips byte-identically.
    #[test]
    fn cancelled_compiles_never_publish_partial_artifacts(
        layers in 1usize..6,
        expire in proptest::bool::ANY,
    ) {
        let service = CompileService::start(config(1, 8));
        let deadline = if expire { Some(0) } else { Some(600_000) };
        let doc = job_doc(&format!("prop-{layers}"), &chain_qasm(layers), deadline);

        let reply = service.submit_wait(&doc).expect("admitted");
        let resubmitted = service.submit(&doc).expect("admitted");
        if expire {
            prop_assert!(reply.contains("\"kind\":\"deadline\""), "got {}", reply);
            // Nothing was cached: the resubmission is not a hit.
            prop_assert!(
                !matches!(resubmitted, Submission::Cached(_)),
                "expired compile published an artifact"
            );
        } else {
            prop_assert!(reply.contains("\"ok\":true"), "got {}", reply);
            match resubmitted {
                Submission::Cached(cached) => prop_assert_eq!(cached, reply),
                other => prop_assert!(false, "expected a cache hit, got {:?}", other),
            }
        }
        service.shutdown();
    }
}
