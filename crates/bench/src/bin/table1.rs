//! Reproduces the paper's Table 1: mapping results for three NA hardware
//! settings under three compilation strategies (Table 1a), the benchmark
//! gate profiles (Table 1b) and the hardware settings (Table 1c).
//!
//! Usage:
//!
//! ```sh
//! cargo run -p na-bench --release --bin table1              # 25% scale (fast)
//! cargo run -p na-bench --release --bin table1 -- --full    # paper scale (200 qubits)
//! cargo run -p na-bench --release --bin table1 -- --scale 0.5
//! cargo run -p na-bench --release --bin table1 -- --profiles  # Table 1b/1c only
//! ```

use na_arch::HardwareParams;
use na_bench::{
    default_alpha_grid, run_experiment, run_hybrid_alpha_sweep, scaled_preset, scaled_suite, secs,
};
use na_mapper::MapperConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.25f64;
    let mut profiles_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = 1.0,
            "--profiles" => profiles_only = true,
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--scale takes a number in (0, 1]");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: table1 [--full | --scale X | --profiles]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    print_table_1c();
    print_table_1b(scale);
    if profiles_only {
        return;
    }
    print_table_1a(scale);
}

fn print_table_1c() {
    println!("Table 1c: hardware settings");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "parameter", "shuttling", "gate", "mixed"
    );
    let presets = HardwareParams::table1_presets();
    let row = |name: &str, f: &dyn Fn(&HardwareParams) -> String| {
        println!(
            "{:<22} {:>10} {:>10} {:>10}",
            name,
            f(&presets[0]),
            f(&presets[1]),
            f(&presets[2])
        );
    };
    row("r_int = r_restr [d]", &|p| format!("{}", p.r_int));
    row("F_CZ", &|p| format!("{}", p.f_cz));
    row("F_H", &|p| format!("{}", p.f_single));
    row("F_shuttling", &|p| format!("{}", p.f_shuttle));
    row("t_U3 [us]", &|p| format!("{}", p.t_single_us));
    row("t_CZ [us]", &|p| format!("{}", p.t_cz_us));
    row("t_CCZ [us]", &|p| format!("{}", p.t_ccz_us));
    row("t_CCCZ [us]", &|p| format!("{}", p.t_cccz_us));
    row("v [um/us]", &|p| format!("{}", p.shuttle_speed_um_per_us));
    row("t_act/deact [us]", &|p| format!("{}", p.t_act_us));
    row("T1 [us]", &|p| format!("{:.0e}", p.t1_us));
    row("T2 [us]", &|p| format!("{:.1e}", p.t2_us));
    println!();
}

fn print_table_1b(scale: f64) {
    println!("Table 1b: benchmark profiles (scale = {scale})");
    println!(
        "{:<8} {:>6} {:>8} {:>8} {:>8}",
        "name", "n", "nCZ", "nC2Z", "nC3Z"
    );
    for (name, circuit) in na_circuit::generators::table1b_suite(scale) {
        let s = circuit.stats();
        println!(
            "{:<8} {:>6} {:>8} {:>8} {:>8}",
            name,
            s.num_qubits,
            s.cz_family_count(2),
            s.cz_family_count(3),
            s.cz_family_count(4)
        );
    }
    println!();
}

fn print_table_1a(scale: f64) {
    println!("Table 1a: mapping results (scale = {scale})");
    println!(
        "{:<19} | {:^35} | {:^35} | {:^42}",
        "", "(A) shuttling-only", "(B) gate-only", "(C) hybrid (best alpha)"
    );
    println!(
        "{:<10} {:<8} | {:>7} {:>10} {:>8} {:>7} | {:>7} {:>10} {:>8} {:>7} | {:>7} {:>10} {:>8} {:>7} {:>6}",
        "hardware", "circuit",
        "dCZ", "dT[us]", "dF", "RT[s]",
        "dCZ", "dT[us]", "dF", "RT[s]",
        "dCZ", "dT[us]", "dF", "RT[s]", "alpha",
    );

    let alphas = default_alpha_grid();
    for preset in HardwareParams::table1_presets() {
        let params = scaled_preset(preset, scale);
        let suite = scaled_suite(scale, params.num_atoms);
        for (name, circuit) in &suite {
            let shuttle = run_experiment(&params, circuit, MapperConfig::shuttle_only());
            let gate = run_experiment(&params, circuit, MapperConfig::gate_only());
            let hybrid = run_hybrid_alpha_sweep(&params, circuit, &alphas);
            match (shuttle, gate, hybrid) {
                (Ok(s), Ok(g), Ok(h)) => {
                    println!(
                        "{:<10} {:<8} | {:>7} {:>10.1} {:>8.3} {:>7} | {:>7} {:>10.1} {:>8.3} {:>7} | {:>7} {:>10.1} {:>8.3} {:>7} {:>6.2}",
                        params.name, name,
                        s.delta_cz, s.delta_t_us, s.delta_f, secs(s.runtime),
                        g.delta_cz, g.delta_t_us, g.delta_f, secs(g.runtime),
                        h.delta_cz, h.delta_t_us, h.delta_f, secs(h.runtime),
                        h.alpha.unwrap_or(f64::NAN),
                    );
                }
                (s, g, h) => {
                    let err = s.err().or(g.err()).or(h.err()).expect("some error");
                    println!("{:<10} {:<8} | error: {err}", params.name, name);
                }
            }
        }
        println!();
    }
    println!("dF = -log10(P_mapped / P_original); smaller is better.");
    println!("Expected shape: shuttling hw -> (A) wins; gate hw -> (B) wins;");
    println!("mixed hw -> (C) at least ties the better pure mode per circuit.");
}
