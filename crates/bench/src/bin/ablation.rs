//! Ablation studies over the mapper's design knobs (DESIGN.md §3,
//! experiments A1–A3):
//!
//! * `lambda`    — decay rate λ_t: SWAP-count vs parallelism trade-off
//!   (§3.3.1's claim that λ_t tunes hardware-adaptive mapping),
//! * `lookahead` — lookahead weight w_l of Eq. (2)/(4),
//! * `alpha`     — decision ratio α = α_g/α_s on mixed hardware (§4.2's
//!   observation that the optimal α varies per circuit),
//! * `timeweight`— shuttle parallelism weight w_t of Eq. (4).
//!
//! Usage:
//!
//! ```sh
//! cargo run -p na-bench --release --bin ablation -- lambda
//! cargo run -p na-bench --release --bin ablation -- alpha --scale 0.5
//! cargo run -p na-bench --release --bin ablation            # all studies
//! ```

use na_arch::HardwareParams;
use na_bench::{run_experiment, scaled_preset, secs};
use na_circuit::generators::{GraphState, Qft, Reversible};
use na_circuit::{decompose_to_native, Circuit};
use na_mapper::MapperConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut scale = 0.25f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--scale takes a number in (0, 1]");
            }
            name @ ("lambda" | "lookahead" | "alpha" | "timeweight" | "layout") => {
                which = Some(name.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: ablation [lambda|lookahead|alpha|timeweight|layout] [--scale X]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    match which.as_deref() {
        Some("lambda") => ablate_lambda(scale),
        Some("lookahead") => ablate_lookahead(scale),
        Some("alpha") => ablate_alpha(scale),
        Some("timeweight") => ablate_timeweight(scale),
        Some("layout") => ablate_layout(scale),
        _ => {
            ablate_lambda(scale);
            ablate_lookahead(scale);
            ablate_alpha(scale);
            ablate_timeweight(scale);
            ablate_layout(scale);
        }
    }
}

/// A4: initial layout (identity vs center-compact vs random).
fn ablate_layout(scale: f64) {
    use na_mapper::InitialLayout;
    println!("Ablation A4: initial layout (mixed hardware, hybrid alpha=1)");
    println!(
        "{:<16} {:<8} {:>8} {:>8} {:>12} {:>10}",
        "layout", "circuit", "swaps", "moves", "dT[us]", "dF"
    );
    let params = scaled_preset(HardwareParams::mixed(), scale);
    let n = params.num_atoms.min((200.0 * scale) as u32).max(8);
    let suite: Vec<(&str, Circuit)> = vec![
        ("qft", Qft::new(n).build()),
        (
            "graph",
            GraphState::new(n)
                .edges((n as usize * 215) / 200)
                .seed(7)
                .build(),
        ),
    ];
    for (lname, layout) in [
        ("identity", InitialLayout::Identity),
        ("center-compact", InitialLayout::CenterCompact),
        ("random(1)", InitialLayout::Random(1)),
    ] {
        for (name, circuit) in &suite {
            let config = MapperConfig::try_hybrid(1.0)
                .expect("valid alpha")
                .with_initial_layout(layout);
            match run_experiment(&params, circuit, config) {
                Ok(r) => println!(
                    "{:<16} {:<8} {:>8} {:>8} {:>12.1} {:>10.3}",
                    lname, name, r.swaps, r.moves, r.delta_t_us, r.delta_f
                ),
                Err(e) => println!("{lname:<16} {name:<8} error: {e}"),
            }
        }
    }
    println!();
}

fn qft(scale: f64) -> Circuit {
    Qft::new(((200.0 * scale) as u32).max(8)).build()
}

/// A1: the decay rate λ_t trades SWAP count against schedule parallelism.
fn ablate_lambda(scale: f64) {
    println!("Ablation A1: decay rate lambda_t (gate hardware, qft)");
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>8}",
        "lambda", "swaps", "dT[us]", "dF", "RT[s]"
    );
    let params = scaled_preset(HardwareParams::gate_based(), scale);
    let circuit = qft(scale);
    for lambda in [0.0, 0.05, 0.1, 0.3, 1.0] {
        let config = MapperConfig::gate_only().with_decay_rate(lambda);
        match run_experiment(&params, &circuit, config) {
            Ok(r) => println!(
                "{:>8} {:>8} {:>12.1} {:>10.3} {:>8}",
                lambda,
                r.swaps,
                r.delta_t_us,
                r.delta_f,
                secs(r.runtime)
            ),
            Err(e) => println!("{lambda:>8} error: {e}"),
        }
    }
    println!();
}

/// A2: lookahead weight w_l.
fn ablate_lookahead(scale: f64) {
    println!("Ablation A2: lookahead weight w_l (gate hardware, qft)");
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>8}",
        "w_l", "swaps", "dT[us]", "dF", "RT[s]"
    );
    let params = scaled_preset(HardwareParams::gate_based(), scale);
    let circuit = qft(scale);
    for w_l in [0.0, 0.05, 0.1, 0.5, 1.0] {
        let config = MapperConfig::gate_only().with_lookahead_weight(w_l);
        match run_experiment(&params, &circuit, config) {
            Ok(r) => println!(
                "{:>8} {:>8} {:>12.1} {:>10.3} {:>8}",
                w_l,
                r.swaps,
                r.delta_t_us,
                r.delta_f,
                secs(r.runtime)
            ),
            Err(e) => println!("{w_l:>8} error: {e}"),
        }
    }
    println!();
}

/// A3: decision ratio α on mixed hardware — the paper's observation that
/// the optimal α depends on circuit structure (§4.2).
fn ablate_alpha(scale: f64) {
    println!("Ablation A3: decision ratio alpha (mixed hardware)");
    let params = scaled_preset(HardwareParams::mixed(), scale);
    let n = params.num_atoms.min((200.0 * scale) as u32).max(8);
    let suite: Vec<(&str, Circuit)> = vec![
        ("qft", Qft::new(n).build()),
        (
            "graph",
            GraphState::new(n)
                .edges((n as usize * 215) / 200)
                .seed(7)
                .build(),
        ),
        (
            "bn",
            decompose_to_native(
                &Reversible::new(n.min(48))
                    .counts(&[(2, (133.0 * scale) as usize), (3, (87.0 * scale) as usize)])
                    .seed(11)
                    .build(),
            ),
        ),
    ];
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>12} {:>10}",
        "circuit", "alpha", "swaps", "moves", "dT[us]", "dF"
    );
    for (name, circuit) in &suite {
        for alpha in [0.25, 0.5, 1.0, 2.0, 4.0] {
            match run_experiment(
                &params,
                circuit,
                MapperConfig::try_hybrid(alpha).expect("valid alpha"),
            ) {
                Ok(r) => println!(
                    "{:<8} {:>8} {:>8} {:>8} {:>12.1} {:>10.3}",
                    name, alpha, r.swaps, r.moves, r.delta_t_us, r.delta_f
                ),
                Err(e) => println!("{name:<8} {alpha:>8} error: {e}"),
            }
        }
        println!();
    }
}

/// w_t: the shuttle parallelism weight of Eq. (4).
fn ablate_timeweight(scale: f64) {
    println!("Ablation: shuttle time weight w_t (shuttling hardware, qft)");
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>8}",
        "w_t", "moves", "dT[us]", "dF", "RT[s]"
    );
    let params = scaled_preset(HardwareParams::shuttling(), scale);
    let circuit = qft(scale);
    for w_t in [0.0, 0.05, 0.1, 0.5, 1.0] {
        let config = MapperConfig::shuttle_only().with_time_weight(w_t);
        match run_experiment(&params, &circuit, config) {
            Ok(r) => println!(
                "{:>8} {:>8} {:>12.1} {:>10.3} {:>8}",
                w_t,
                r.moves,
                r.delta_t_us,
                r.delta_f,
                secs(r.runtime)
            ),
            Err(e) => println!("{w_t:>8} error: {e}"),
        }
    }
    println!();
}
