//! Bench-regression guard for CI: compares a freshly produced
//! `BENCH_routing.json` against the committed baseline and fails when
//! any watched metric regressed beyond its allowed ratio.
//!
//! ```text
//! bench_guard <baseline.json> <fresh.json> <metric:max_ratio> [<metric:max_ratio>...]
//! bench_guard <baseline.json> <fresh.json> <metric> <max_ratio>     # legacy form
//! ```
//!
//! Exits 0 (with a message) **without comparing** when the two files
//! disagree on `host_parallelism` — wall-clock numbers measured on
//! hosts with different core counts are not comparable, and the
//! committed baseline is refreshed from whatever machine last ran the
//! bench. Exits 1 when `fresh[metric] > baseline[metric] * max_ratio`
//! for any watched metric (every metric is evaluated and reported
//! before the verdict). A metric recorded as an explicit `null` is
//! skipped with a note (e.g. the thread-scaling fields a single-core
//! host cannot measure); a metric *absent* from the fresh run fails
//! the guard — a renamed or dropped key must not silently disarm it
//! (absent from the baseline only is noted, so a brand-new metric can
//! land its first baseline).
//!
//! The parser is deliberately tiny (flat `"key": number` documents
//! only) so the guard has no dependency on a JSON library.

use std::process::ExitCode;

/// How a metric key reads out of a flat JSON document.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Reading {
    /// The key does not appear at all — a renamed/mistyped metric.
    Absent,
    /// The key is present but holds no number (e.g. `null` — a run
    /// that legitimately skipped the measurement).
    Null,
    /// A measured value.
    Value(f64),
}

/// Extracts a `"key": <number>` entry from a flat JSON document,
/// distinguishing a missing key from an explicit `null`.
fn read_metric(doc: &str, key: &str) -> Reading {
    let needle = format!("\"{key}\"");
    let Some(at) = doc.find(&needle) else {
        return Reading::Absent;
    };
    let Some(rest) = doc[at + needle.len()..].trim_start().strip_prefix(':') else {
        return Reading::Absent;
    };
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    match rest[..end].parse() {
        Ok(v) => Reading::Value(v),
        Err(_) => Reading::Null,
    }
}

/// [`read_metric`] collapsed to the numeric value, when present.
fn metric(doc: &str, key: &str) -> Option<f64> {
    match read_metric(doc, key) {
        Reading::Value(v) => Some(v),
        _ => None,
    }
}

/// One `metric:max_ratio` guard clause.
struct Watch {
    key: String,
    max_ratio: f64,
}

fn parse_watches(args: &[String]) -> Result<Vec<Watch>, String> {
    // Legacy positional form: `<metric> <max_ratio>`.
    if args.len() == 2 && !args[0].contains(':') {
        let max_ratio: f64 = args[1]
            .parse()
            .map_err(|e| format!("bad max_ratio {:?}: {e}", args[1]))?;
        return Ok(vec![Watch {
            key: args[0].clone(),
            max_ratio,
        }]);
    }
    args.iter()
        .map(|spec| {
            let (key, ratio) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad metric spec {spec:?}: expected metric:max_ratio"))?;
            let max_ratio: f64 = ratio
                .parse()
                .map_err(|e| format!("bad max_ratio in {spec:?}: {e}"))?;
            Ok(Watch {
                key: key.to_string(),
                max_ratio,
            })
        })
        .collect()
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        return Err(
            "usage: bench_guard <baseline.json> <fresh.json> <metric:max_ratio>... \
             (or the legacy <metric> <max_ratio> form)"
                .into(),
        );
    }
    let (baseline_path, fresh_path) = (&args[0], &args[1]);
    let watches = parse_watches(&args[2..])?;
    let baseline =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let fresh =
        std::fs::read_to_string(fresh_path).map_err(|e| format!("read {fresh_path}: {e}"))?;

    let base_host = metric(&baseline, "host_parallelism");
    let fresh_host = metric(&fresh, "host_parallelism");
    match (base_host, fresh_host) {
        (Some(b), Some(f)) if b == f => {}
        (b, f) => {
            println!(
                "bench_guard: SKIP — host_parallelism differs or is missing \
                 (baseline {b:?}, fresh {f:?}); wall-clock baselines are only \
                 comparable on like-for-like hosts"
            );
            return Ok(true);
        }
    }

    let mut ok = true;
    for watch in &watches {
        let key = &watch.key;
        let (base, new) = (read_metric(&baseline, key), read_metric(&fresh, key));
        match (base, new) {
            (Reading::Value(base), Reading::Value(new)) => {
                let limit = base * watch.max_ratio;
                if new > limit {
                    println!(
                        "bench_guard: FAIL — {key} regressed: {new:.3} > {base:.3} × {} = \
                         {limit:.3}",
                        watch.max_ratio
                    );
                    ok = false;
                } else {
                    println!(
                        "bench_guard: OK — {key} = {new:.3} (baseline {base:.3}, limit {limit:.3})"
                    );
                }
            }
            // A missing *fresh* key means the bench stopped emitting a
            // watched metric (rename/typo) — that silently disarming
            // the guard is exactly the failure mode to catch. A key
            // missing from the *baseline* only happens on the
            // transition commit that introduces the metric; note it
            // and pass so the new baseline can land.
            (_, Reading::Absent) => {
                println!("bench_guard: FAIL — {key} missing from the fresh run");
                ok = false;
            }
            (Reading::Absent, _) => {
                println!(
                    "bench_guard: note — {key} absent from the baseline \
                     (new metric); will be guarded once this baseline lands"
                );
            }
            // Explicit `null` on either side (e.g. thread-scaling
            // fields on a 1-core host): legitimately not measured.
            (base, new) => {
                println!(
                    "bench_guard: skip {key} — recorded as null \
                     (baseline {base:?}, fresh {new:?})"
                );
            }
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_guard: error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{metric, parse_watches, read_metric};

    const DOC: &str = "{\n  \"bench\": \"routing\",\n  \"host_parallelism\": 4,\n  \
                       \"map_hybrid_qft24_ms\": 3.125,\n  \"cache_speedup\": 31.61,\n  \
                       \"batch_throughput_4t_per_s\": null\n}\n";

    #[test]
    fn extracts_numeric_fields() {
        assert_eq!(metric(DOC, "host_parallelism"), Some(4.0));
        assert_eq!(metric(DOC, "map_hybrid_qft24_ms"), Some(3.125));
        assert_eq!(metric(DOC, "cache_speedup"), Some(31.61));
    }

    #[test]
    fn missing_field_is_none() {
        assert_eq!(metric(DOC, "absent"), None);
        assert_eq!(metric("{}", "host_parallelism"), None);
    }

    #[test]
    fn null_field_is_none() {
        assert_eq!(metric(DOC, "batch_throughput_4t_per_s"), None);
    }

    #[test]
    fn readings_distinguish_absent_from_null() {
        use super::Reading;
        assert_eq!(read_metric(DOC, "cache_speedup"), Reading::Value(31.61));
        assert_eq!(read_metric(DOC, "batch_throughput_4t_per_s"), Reading::Null);
        assert_eq!(read_metric(DOC, "renamed_metric"), Reading::Absent);
    }

    #[test]
    fn parses_multi_metric_specs() {
        let watches = parse_watches(&[
            "map_hybrid_qft24_ms:1.25".to_string(),
            "map_hybrid_qft64_15x15_ms:1.25".to_string(),
        ])
        .expect("valid specs");
        assert_eq!(watches.len(), 2);
        assert_eq!(watches[0].key, "map_hybrid_qft24_ms");
        assert_eq!(watches[1].max_ratio, 1.25);
    }

    #[test]
    fn parses_legacy_positional_form() {
        let watches = parse_watches(&["map_hybrid_qft24_ms".to_string(), "1.25".to_string()])
            .expect("legacy form");
        assert_eq!(watches.len(), 1);
        assert_eq!(watches[0].key, "map_hybrid_qft24_ms");
        assert_eq!(watches[0].max_ratio, 1.25);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(
            parse_watches(&["no-ratio".to_string(), "x".to_string(), "y".to_string()]).is_err()
        );
        assert!(parse_watches(&["metric:not-a-number".to_string()]).is_err());
    }
}
