//! Bench-regression guard for CI: compares a freshly produced
//! `BENCH_routing.json` against the committed baseline and fails when a
//! watched metric regressed beyond the allowed ratio.
//!
//! ```text
//! bench_guard <baseline.json> <fresh.json> <metric> <max_ratio>
//! ```
//!
//! Exits 0 (with a message) **without comparing** when the two files
//! disagree on `host_parallelism` — wall-clock numbers measured on
//! hosts with different core counts are not comparable, and the
//! committed baseline is refreshed from whatever machine last ran the
//! bench. Exits 1 when `fresh[metric] > baseline[metric] * max_ratio`.
//!
//! The parser is deliberately tiny (flat `"key": number` documents
//! only) so the guard has no dependency on a JSON library.

use std::process::ExitCode;

/// Extracts a `"key": <number>` value from a flat JSON document.
fn metric(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path, key, max_ratio] = args.as_slice() else {
        return Err("usage: bench_guard <baseline.json> <fresh.json> <metric> <max_ratio>".into());
    };
    let max_ratio: f64 = max_ratio
        .parse()
        .map_err(|e| format!("bad max_ratio {max_ratio:?}: {e}"))?;
    let baseline =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let fresh =
        std::fs::read_to_string(fresh_path).map_err(|e| format!("read {fresh_path}: {e}"))?;

    let base_host = metric(&baseline, "host_parallelism");
    let fresh_host = metric(&fresh, "host_parallelism");
    match (base_host, fresh_host) {
        (Some(b), Some(f)) if b == f => {}
        (b, f) => {
            println!(
                "bench_guard: SKIP — host_parallelism differs or is missing \
                 (baseline {b:?}, fresh {f:?}); wall-clock baselines are only \
                 comparable on like-for-like hosts"
            );
            return Ok(true);
        }
    }

    let base = metric(&baseline, key).ok_or_else(|| format!("{key} missing in baseline"))?;
    let new = metric(&fresh, key).ok_or_else(|| format!("{key} missing in fresh run"))?;
    let limit = base * max_ratio;
    if new > limit {
        println!(
            "bench_guard: FAIL — {key} regressed: {new:.3} > {base:.3} × {max_ratio} = {limit:.3}"
        );
        return Ok(false);
    }
    println!("bench_guard: OK — {key} = {new:.3} (baseline {base:.3}, limit {limit:.3})");
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_guard: error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::metric;

    const DOC: &str = "{\n  \"bench\": \"routing\",\n  \"host_parallelism\": 4,\n  \
                       \"map_hybrid_qft24_ms\": 3.125,\n  \"cache_speedup\": 31.61\n}\n";

    #[test]
    fn extracts_numeric_fields() {
        assert_eq!(metric(DOC, "host_parallelism"), Some(4.0));
        assert_eq!(metric(DOC, "map_hybrid_qft24_ms"), Some(3.125));
        assert_eq!(metric(DOC, "cache_speedup"), Some(31.61));
    }

    #[test]
    fn missing_field_is_none() {
        assert_eq!(metric(DOC, "absent"), None);
        assert_eq!(metric("{}", "host_parallelism"), None);
    }
}
