//! Shared harness for the Table 1 reproduction and ablation studies.
//!
//! The binaries (`table1`, `ablation`) and the Criterion benches build on
//! the helpers here: scaled versions of the paper's hardware presets and
//! benchmark suite, single-experiment execution, the α sweep of the
//! hybrid mode, and plain-text table rendering.

use std::time::Duration;

use na_arch::HardwareParams;
use na_circuit::{generators, Circuit};
use na_mapper::{HybridMapper, MapError, MapperConfig};
use na_schedule::{ComparisonReport, Scheduler};

/// One cell block of Table 1a: the mapping result of one circuit on one
/// hardware under one compiler mode.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Additional CZ gates (`ΔCZ`).
    pub delta_cz: isize,
    /// Execution-time overhead in µs (`ΔT`).
    pub delta_t_us: f64,
    /// Fidelity decrease (`δF`, log₁₀; smaller is better).
    pub delta_f: f64,
    /// Mapper wall-clock runtime (the paper's RT column).
    pub runtime: Duration,
    /// SWAPs inserted.
    pub swaps: usize,
    /// Shuttle moves inserted.
    pub moves: usize,
    /// The α ratio used (hybrid mode only).
    pub alpha: Option<f64>,
}

/// Runs one experiment: map + verify + schedule + compare.
///
/// # Errors
///
/// Propagates mapping failures; verification failures panic (they are
/// library bugs, not user errors).
pub fn run_experiment(
    params: &HardwareParams,
    circuit: &Circuit,
    config: MapperConfig,
) -> Result<ExperimentResult, MapError> {
    let alpha = config.alpha_ratio();
    let mapper = HybridMapper::new(params.clone(), config)?;
    let outcome = mapper.map(circuit)?;
    na_mapper::verify_mapping(circuit, &outcome.mapped, params)
        .expect("mapper produced an unverifiable stream (bug)");
    let report: ComparisonReport = Scheduler::new(params.clone()).compare(circuit, &outcome.mapped);
    Ok(ExperimentResult {
        delta_cz: report.delta_cz,
        delta_t_us: report.delta_t_us,
        delta_f: report.delta_f,
        runtime: outcome.runtime,
        swaps: outcome.mapped.swap_count(),
        moves: outcome.mapped.shuttle_count(),
        alpha,
    })
}

/// Runs the hybrid mode over a grid of α ratios, keeping the best δF —
/// exactly the paper's procedure ("different decision ratios α are
/// tested, keeping only the best", §4.1).
pub fn run_hybrid_alpha_sweep(
    params: &HardwareParams,
    circuit: &Circuit,
    alphas: &[f64],
) -> Result<ExperimentResult, MapError> {
    let mut best: Option<ExperimentResult> = None;
    for &alpha in alphas {
        let result = run_experiment(
            params,
            circuit,
            MapperConfig::try_hybrid(alpha).expect("valid alpha"),
        )?;
        if best.as_ref().is_none_or(|b| result.delta_f < b.delta_f) {
            best = Some(result);
        }
    }
    Ok(best.expect("at least one alpha"))
}

/// The default α grid of the harness (log-spaced around 1).
pub fn default_alpha_grid() -> Vec<f64> {
    vec![0.25, 0.5, 0.8, 0.95, 1.0, 1.05, 1.25, 2.0, 4.0]
}

/// Scales a Table 1c preset: `scale = 1.0` is the paper's 15×15 lattice
/// with 200 atoms; smaller scales shrink the lattice side and atom count
/// proportionally (for fast CI runs).
pub fn scaled_preset(preset: HardwareParams, scale: f64) -> HardwareParams {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    if (scale - 1.0).abs() < 1e-12 {
        return preset;
    }
    let side = ((f64::from(preset.lattice_side) * scale.sqrt()).round() as u32).max(4);
    let max_atoms = side * side - 1;
    let atoms = ((f64::from(preset.num_atoms) * scale).round() as u32).clamp(4, max_atoms);
    preset
        .to_builder()
        .lattice(side, 3.0)
        .num_atoms(atoms)
        .build()
        .expect("scaled preset stays valid")
}

/// The Table 1b benchmark suite at the given scale, sized to fit the
/// scaled hardware (circuit width ≤ atom count).
pub fn scaled_suite(scale: f64, max_qubits: u32) -> Vec<(&'static str, Circuit)> {
    generators::table1b_suite(scale)
        .into_iter()
        .filter(|(_, c)| c.num_qubits() <= max_qubits)
        .collect()
}

/// Formats a Duration as seconds with one decimal.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_preset_keeps_free_sites() {
        for preset in HardwareParams::table1_presets() {
            for scale in [0.1, 0.25, 0.5, 1.0] {
                let p = scaled_preset(preset.clone(), scale);
                p.validate().expect("scaled preset valid");
                assert!(p.num_atoms < p.lattice_side * p.lattice_side);
            }
        }
    }

    #[test]
    fn experiment_runs_at_tiny_scale() {
        let p = scaled_preset(HardwareParams::mixed(), 0.15);
        let suite = scaled_suite(0.1, p.num_atoms);
        assert!(!suite.is_empty());
        let (_, circuit) = &suite[0];
        let result = run_experiment(&p, circuit, MapperConfig::shuttle_only()).unwrap();
        assert_eq!(result.delta_cz, 0);
    }

    #[test]
    fn alpha_sweep_returns_best() {
        let p = scaled_preset(HardwareParams::mixed(), 0.15);
        let circuit = na_circuit::generators::Qft::new(10).build();
        let sweep = run_hybrid_alpha_sweep(&p, &circuit, &[0.5, 1.0, 2.0]).unwrap();
        for alpha in [0.5, 1.0, 2.0] {
            let single = run_experiment(
                &p,
                &circuit,
                MapperConfig::try_hybrid(alpha).expect("valid alpha"),
            )
            .unwrap();
            assert!(sweep.delta_f <= single.delta_f + 1e-9);
        }
    }
}
