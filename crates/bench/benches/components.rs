//! Criterion micro-benchmarks of the mapper's inner loops: BFS over the
//! occupied graph, SWAP selection, multi-qubit position finding, move
//! chain construction, and commutation-aware DAG building.

use criterion::{criterion_group, criterion_main, Criterion};
use na_arch::{HardwareParams, NeighborTable, Neighborhood, Site};
use na_circuit::generators::Qft;
use na_circuit::{CircuitDag, Qubit};
use na_mapper::decision::Capability;
use na_mapper::route::distance::{bfs_occupied, bfs_occupied_table_into};
use na_mapper::route::gate::RoutedGate;
use na_mapper::{
    FrontierGate, GateRouter, MapperConfig, MappingState, RouteScratch, RoutingContext,
    ShuttleRouter,
};

fn paper_state() -> (HardwareParams, MappingState) {
    let params = HardwareParams::mixed();
    let state = MappingState::identity(&params, 200).expect("fits");
    (params, state)
}

fn bench_bfs(c: &mut Criterion) {
    let (params, state) = paper_state();
    let hood = Neighborhood::new(params.r_int);
    let table = NeighborTable::build(state.lattice(), &hood);
    c.bench_function("bfs_occupied_15x15", |b| {
        b.iter(|| bfs_occupied(&state, &[Site::new(0, 0)], &hood))
    });
    let mut dist = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    c.bench_function("bfs_occupied_csr_15x15", |b| {
        b.iter(|| {
            bfs_occupied_table_into(&state, &[Site::new(0, 0)], &table, &mut dist, &mut queue)
        })
    });
}

fn bench_best_swap(c: &mut Criterion) {
    let (params, mut state) = paper_state();
    let hood = Neighborhood::new(params.r_int);
    let table = NeighborTable::build(state.lattice(), &hood);
    let mut scratch = RouteScratch::new();
    let router = GateRouter::new(&params, &MapperConfig::gate_only());
    // A frontier of 8 distant 2-qubit gates.
    let front: Vec<RoutedGate> = (0..8)
        .map(|i| RoutedGate {
            op_index: i,
            qubits: vec![Qubit(i as u32), Qubit(199 - i as u32)],
            position: None,
        })
        .collect();
    c.bench_function("best_swap_front8", |b| {
        b.iter(|| {
            let mut ctx =
                RoutingContext::new(&mut state, &hood, &table, params.r_int, &mut scratch);
            router.best_swap(&mut ctx, &front, &[])
        })
    });
}

fn bench_find_position(c: &mut Criterion) {
    let (params, mut state) = paper_state();
    let hood = Neighborhood::new(params.r_int);
    let table = NeighborTable::build(state.lattice(), &hood);
    let mut scratch = RouteScratch::new();
    let router = GateRouter::new(&params, &MapperConfig::gate_only());
    let qubits = [Qubit(0), Qubit(100), Qubit(199)];
    c.bench_function("find_position_c2z", |b| {
        b.iter(|| {
            let mut ctx =
                RoutingContext::new(&mut state, &hood, &table, params.r_int, &mut scratch);
            router.find_position(&mut ctx, &qubits)
        })
    });
}

fn bench_move_chains(c: &mut Criterion) {
    let (params, mut state) = paper_state();
    let hood = Neighborhood::new(params.r_int);
    let table = NeighborTable::build(state.lattice(), &hood);
    let mut scratch = RouteScratch::new();
    let router = ShuttleRouter::new(&params, &MapperConfig::shuttle_only());
    let front: Vec<FrontierGate> = (0..8)
        .map(|i| FrontierGate {
            op_index: i,
            qubits: vec![Qubit(i as u32), Qubit(199 - i as u32)],
            capability: Capability::Shuttling,
        })
        .collect();
    let front_refs: Vec<&FrontierGate> = front.iter().collect();
    c.bench_function("best_chain_front8", |b| {
        b.iter(|| {
            let mut ctx =
                RoutingContext::new(&mut state, &hood, &table, params.r_int, &mut scratch);
            router.best_chains(&mut ctx, &front_refs, &[])
        })
    });
}

fn bench_dag_construction(c: &mut Criterion) {
    let qft = Qft::new(100).build();
    c.bench_function("dag_qft100", |b| b.iter(|| CircuitDag::new(&qft)));
}

criterion_group!(
    benches,
    bench_bfs,
    bench_best_swap,
    bench_find_position,
    bench_move_chains,
    bench_dag_construction
);
criterion_main!(benches);
