//! Routing-engine benchmarks: cold vs. cached `RoutingContext` distance
//! queries, shuttle candidate-evaluation throughput, end-to-end
//! `HybridMapper::map` on QFT-24/QAOA-24 over a 6×6 lattice, and the
//! **paper-scale tier** — QFT-64/QAOA-80 on the paper's 15×15/200-atom
//! machine plus a 30×30/800-atom extrapolation — with bounded-BFS
//! settle counts showing how much lattice a targeted query touches, and
//! the **mega tier** — QFT-128/QAOA-256 on a 100×100/4500-atom machine
//! exercising the hierarchical coarse-to-fine router (region corridors,
//! ring-walk site scans, LRU-bounded distance cache).
//!
//! Besides the criterion output, this bench writes a machine-readable
//! baseline to `BENCH_routing.json` at the workspace root so future PRs
//! can compare against it (the CI bench-regression job consumes the
//! `map_hybrid_*`/`map_gate_*` timings and `candidate_eval_us`,
//! skipping when `host_parallelism` differs). The round-mode tier
//! records `rounds_total_*` / `commits_per_round_*` and per-candidate
//! round evaluation cost under both [`RoundMode`]s, plus `_single_ms`
//! twins of the headline map timings so the speculative default's
//! payoff is visible inside one baseline file. The mega tier lives only
//! in the baseline writer, not the criterion groups, to keep
//! `cargo bench` wall-clock bounded.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use na_arch::{HardwareParams, NeighborTable, Neighborhood};
use na_circuit::generators::{Qaoa, Qft, RandomCircuit};
use na_circuit::{Circuit, Qubit};
use na_mapper::decision::Capability;
use na_mapper::route::DistanceCache;
use na_mapper::{
    CacheStats, FrontierGate, HybridMapper, MapScratch, MapStats, MappedCircuit, MappedOp,
    MapperConfig, MappingState, RoundMode, RouteScratch, RoutingContext, RoutingEngine,
    ShuttleRouter,
};
use na_schedule::export::cache_stats_to_json;

/// 6×6-lattice scaled mixed hardware, 30 atoms (QFT-24 fits).
fn small_mixed() -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(6, 3.0)
        .num_atoms(30)
        .build()
        .expect("valid")
}

/// The paper's evaluation machine: 15×15 lattice, 200 atoms (mixed
/// preset, Table 1c).
fn paper_mixed() -> HardwareParams {
    HardwareParams::mixed()
}

/// A 2× linear extrapolation of the paper machine: 30×30 lattice, 800
/// atoms at the same fill fraction.
fn huge_mixed() -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(30, 3.0)
        .num_atoms(800)
        .build()
        .expect("valid")
}

/// The mega tier: a 100×100 lattice with 4500 atoms — an order of
/// magnitude past the paper's machine, the scale the hierarchical
/// region router exists for.
fn mega_mixed() -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(100, 3.0)
        .num_atoms(4500)
        .build()
        .expect("valid")
}

fn qft24() -> Circuit {
    Qft::new(24).build()
}

fn qaoa24() -> Circuit {
    Qaoa::new(24).edges(30).layers(2).seed(5).build()
}

fn qft64() -> Circuit {
    Qft::new(64).build()
}

fn qaoa80() -> Circuit {
    Qaoa::new(80).edges(120).layers(2).seed(7).build()
}

fn qft128() -> Circuit {
    Qft::new(128).build()
}

fn qaoa256() -> Circuit {
    Qaoa::new(256).edges(384).layers(2).seed(9).build()
}

/// A CCZ-heavy random circuit: arity-3 gates route through the gate
/// router's `find_position`, the production consumer of the distance
/// cache — this is the mega-tier workload whose cache counters are
/// meaningful (QFT/QAOA decompose to 2-qubit natives, which route on
/// closed-form swap distances without BFS).
fn mega_random() -> Circuit {
    RandomCircuit::new(192)
        .layers(6)
        .two_qubit_fraction(0.5)
        .multi_qubit_fraction(0.5)
        .seed(11)
        .build()
}

/// One pass of distance queries from every occupied site through the
/// scratch arena's cache — the identical workload for the cold and
/// warm variants.
fn query_pass(
    state: &mut MappingState,
    hood: &Neighborhood,
    table: &NeighborTable,
    r_int: f64,
    scratch: &mut RouteScratch,
) -> u64 {
    let occupied: Vec<_> = state
        .lattice()
        .iter()
        .filter(|s| !state.is_free(*s))
        .collect();
    let ctx = RoutingContext::new(state, hood, table, r_int, scratch);
    let mut acc = 0u64;
    for site in occupied {
        acc += u64::from(ctx.distances_from(site)[0]);
    }
    acc
}

/// One pass with a fresh arena per query = the old per-call BFS
/// recomputation.
fn query_cold(
    state: &mut MappingState,
    hood: &Neighborhood,
    table: &NeighborTable,
    r_int: f64,
) -> u64 {
    let occupied: Vec<_> = state
        .lattice()
        .iter()
        .filter(|s| !state.is_free(*s))
        .collect();
    let mut acc = 0u64;
    for site in occupied {
        let mut scratch = RouteScratch::new();
        let ctx = RoutingContext::new(state, hood, table, r_int, &mut scratch);
        acc += u64::from(ctx.distances_from(site)[0]);
    }
    acc
}

/// An 8-gate shuttle frontier over distant qubit pairs — the candidate
/// evaluation workload (each 2-qubit gate evaluates one chain per
/// center, i.e. two journaled simulate/undo rounds per gate).
fn shuttle_frontier(num_qubits: u32) -> Vec<FrontierGate> {
    (0..8)
        .map(|i| FrontierGate {
            op_index: i,
            qubits: vec![Qubit(i as u32), Qubit(num_qubits - 1 - i as u32)],
            capability: Capability::Shuttling,
        })
        .collect()
}

fn bench_distance_cache(c: &mut Criterion) {
    let params = small_mixed();
    let mut state = MappingState::identity(&params, 24).expect("fits");
    let hood = Neighborhood::new(params.r_int);
    let table = NeighborTable::build(state.lattice(), &hood);
    let mut warm = RouteScratch::new();
    query_pass(&mut state, &hood, &table, params.r_int, &mut warm); // fill the cache
    let mut group = c.benchmark_group("distance_queries");
    group.bench_function("cold", |b| {
        b.iter(|| query_cold(&mut state, &hood, &table, params.r_int))
    });
    group.bench_function("cached", |b| {
        b.iter(|| query_pass(&mut state, &hood, &table, params.r_int, &mut warm))
    });
    group.finish();
}

fn bench_candidate_eval(c: &mut Criterion) {
    let params = small_mixed();
    let mut state = MappingState::identity(&params, 24).expect("fits");
    let hood = Neighborhood::new(params.r_int);
    let table = NeighborTable::build(state.lattice(), &hood);
    let mut scratch = RouteScratch::new();
    let router = ShuttleRouter::new(&params, &MapperConfig::shuttle_only());
    let front = shuttle_frontier(24);
    let refs: Vec<&FrontierGate> = front.iter().collect();
    c.bench_function("shuttle_candidates_front8", |b| {
        b.iter(|| {
            let mut ctx =
                RoutingContext::new(&mut state, &hood, &table, params.r_int, &mut scratch);
            router.best_chains(&mut ctx, &refs, &[])
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let params = small_mixed();
    let mut group = c.benchmark_group("map_engine");
    group.sample_size(10);
    for (name, circuit) in [("qft-24", qft24()), ("qaoa-24", qaoa24())] {
        for (mode, config) in [
            (
                "hybrid",
                MapperConfig::try_hybrid(1.0).expect("valid alpha"),
            ),
            ("gate", MapperConfig::gate_only()),
            ("shuttle", MapperConfig::shuttle_only()),
        ] {
            let mapper = HybridMapper::new(params.clone(), config).expect("valid");
            group.bench_function(format!("{mode}/{name}"), |b| {
                b.iter(|| mapper.map(&circuit).expect("mappable"))
            });
        }
    }
    group.finish();
}

fn bench_paper_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_scale");
    group.sample_size(10);
    for (name, params, circuit) in [
        ("qft-64/15x15", paper_mixed(), qft64()),
        ("qaoa-80/15x15", paper_mixed(), qaoa80()),
        ("qft-64/30x30", huge_mixed(), qft64()),
    ] {
        let mapper = HybridMapper::new(params, MapperConfig::try_hybrid(1.0).expect("valid alpha"))
            .expect("valid");
        group.bench_function(name, |b| b.iter(|| mapper.map(&circuit).expect("mappable")));
    }
    group.finish();
}

/// Mean wall-clock seconds of `f` over `n` runs (after one warm-up).
fn mean_secs<T>(n: u32, mut f: impl FnMut() -> T) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() / f64::from(n)
}

/// Mean hybrid mapping time (ms) of `circuit` on `params`.
fn map_ms(params: &HardwareParams, circuit: &Circuit, runs: u32) -> f64 {
    let mapper = HybridMapper::new(
        params.clone(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .expect("valid");
    mean_secs(runs, || mapper.map(circuit).expect("mappable")) * 1e3
}

/// Mean hybrid mapping time (ms) of `circuit` on `params` under
/// `mode`, plus the [`MapStats`] of one run — the per-mode round
/// counters (`rounds_total`, `commits_total`) behind the baseline's
/// `commits_per_round_*` fields.
fn map_ms_with_stats(
    params: &HardwareParams,
    circuit: &Circuit,
    mode: RoundMode,
    runs: u32,
) -> (f64, MapStats) {
    let config = MapperConfig::try_hybrid(1.0)
        .expect("valid alpha")
        .with_round_mode(mode);
    let mapper = HybridMapper::new(params.clone(), config).expect("valid");
    let mut stats = MapStats::default();
    let ms = mean_secs(runs, || {
        stats = mapper.map(circuit).expect("mappable").stats;
    }) * 1e3;
    (ms, stats)
}

/// Per-candidate evaluation cost (µs) of one engine round under `mode`:
/// a fixed four-gate qubit-disjoint frontier on the 6×6 machine, with
/// the state cloned per iteration so every round scores the identical
/// pre-round layout. Single mode reduces the candidate sweep to one
/// winner and commits it; speculative mode additionally mints a
/// conflict set per candidate and multi-commits — the delta between the
/// two baseline fields is the per-candidate speculation overhead.
fn round_eval_us(params: &HardwareParams, mode: RoundMode, runs: u32) -> f64 {
    let config = MapperConfig::try_hybrid(1.0)
        .expect("valid alpha")
        .with_round_mode(mode);
    let base = MappingState::identity(params, 24).expect("fits");
    let frontier: Vec<FrontierGate> = (0..4)
        .map(|g| FrontierGate {
            op_index: g,
            qubits: vec![Qubit(g as u32), Qubit(23 - g as u32)],
            capability: Capability::GateBased,
        })
        .collect();
    let eligible: Vec<usize> = (0..frontier.len()).collect();
    let mut engine = RoutingEngine::from_config(params, &config);
    let mut scratch = RouteScratch::new();
    let secs = mean_secs(runs, || {
        let mut state = base.clone();
        let mut out = MappedCircuit::new(24, params.num_atoms);
        match mode {
            RoundMode::Single => engine
                .step(&mut state, &frontier, &[], &mut scratch, &mut out)
                .expect("routable"),
            RoundMode::Speculative => engine
                .step_speculative(
                    &mut state,
                    &frontier,
                    &[],
                    &eligible,
                    1,
                    &mut scratch,
                    &mut out,
                )
                .expect("routable"),
        }
    });
    secs * 1e6 / frontier.len() as f64
}

/// Mean mapping time (ms) of `circuit` on `params` under `config`, plus
/// the routing-layer cache counters of the last run. Each run maps
/// through a fresh [`MapScratch`], so the counters are exactly one cold
/// compile's worth — the same numbers a
/// `na_pipeline::Compiler::compile` call reports in its
/// `route_cache` stats.
fn map_ms_with_cache(
    params: &HardwareParams,
    circuit: &Circuit,
    config: MapperConfig,
    runs: u32,
) -> (f64, CacheStats) {
    let mapper = HybridMapper::new(params.clone(), config).expect("valid");
    let mut stats = CacheStats::default();
    let ms = mean_secs(runs, || {
        let mut scratch = MapScratch::new();
        let mut ops: Vec<MappedOp> = Vec::new();
        mapper
            .map_into_scratch(circuit, &mut ops, &mut scratch)
            .expect("mappable");
        stats = scratch.route().distance_cache().snapshot();
    }) * 1e3;
    (ms, stats)
}

/// Floods the distance cache with one bounded (corridor-armed) query
/// per atom of a mega-scale identity state: thousands of distinct
/// sources on a single occupancy generation, so the LRU cap must evict
/// while the region corridor keeps each fine BFS local. This is the
/// workload that demonstrates the memory bound — resident entries never
/// exceed [`DistanceCache::MAX_RESIDENT_FIELDS`] no matter how many
/// sources query.
fn mega_query_storm(params: &HardwareParams) -> CacheStats {
    let num_qubits = params.num_atoms;
    let state = MappingState::identity(params, num_qubits).expect("fits");
    let hood = Neighborhood::new(params.r_int);
    let table = NeighborTable::build(state.lattice(), &hood);
    let cache = DistanceCache::new();
    let mut out = Vec::new();
    for q in 0..num_qubits {
        let start = state.site_of_qubit(Qubit(q));
        // Nearby targets (±3 layout neighbors): the realistic shape of a
        // routing query, whose BFS ball should stay within a handful of
        // 8×8 regions out of the grid's 169.
        let targets = [
            state.site_of_qubit(Qubit((q + 1) % num_qubits)),
            state.site_of_qubit(Qubit((q + 2) % num_qubits)),
            state.site_of_qubit(Qubit((q + 3) % num_qubits)),
        ];
        cache.distances_at(&state, &table, start, &targets, &mut out);
    }
    cache.snapshot()
}

/// `(settled_full, settled_bounded)` BFS site counts on the identity
/// layout of `params`: a full field from qubit 0's site vs. a query
/// bounded to the sites of its three nearest qubit neighbors. The gap
/// is the point of bounded BFS — the targeted query touches a frontier,
/// not the occupied graph.
fn settle_counts(params: &HardwareParams) -> (u64, u64) {
    let num_qubits = params.num_atoms.min(64);
    let state = MappingState::identity(params, num_qubits).expect("fits");
    let hood = Neighborhood::new(params.r_int);
    let table = NeighborTable::build(state.lattice(), &hood);
    let start = state.site_of_qubit(Qubit(0));
    let targets = [
        state.site_of_qubit(Qubit(1)),
        state.site_of_qubit(Qubit(2)),
        state.site_of_qubit(Qubit(3)),
    ];
    let full_cache = DistanceCache::new();
    full_cache.field(&state, &table, start);
    let full = full_cache.sites_settled();
    let bounded_cache = DistanceCache::new();
    let mut out = Vec::new();
    bounded_cache.distances_at(&state, &table, start, &targets, &mut out);
    assert!(out.iter().all(|&d| d != u32::MAX), "targets reachable");
    let bounded = bounded_cache.sites_settled();
    (full, bounded)
}

/// Writes the machine-readable baseline consumed by future PRs and the
/// CI bench-regression job.
fn write_baseline() {
    let params = small_mixed();
    let mut state = MappingState::identity(&params, 24).expect("fits");
    let hood = Neighborhood::new(params.r_int);
    let table = NeighborTable::build(state.lattice(), &hood);

    let cold = mean_secs(20, || query_cold(&mut state, &hood, &table, params.r_int));
    let mut warm = RouteScratch::new();
    query_pass(&mut state, &hood, &table, params.r_int, &mut warm);
    let cached = mean_secs(20, || {
        query_pass(&mut state, &hood, &table, params.r_int, &mut warm)
    });

    // Cache hit rates over one query pass: a cold arena misses every
    // query, the warm arena should serve (nearly) everything.
    let cold_rate = {
        let mut fresh = RouteScratch::new();
        query_pass(&mut state, &hood, &table, params.r_int, &mut fresh);
        let (hits, misses) = fresh.distance_cache().stats();
        hits as f64 / (hits + misses).max(1) as f64
    };
    let warm_rate = {
        let mut arena = RouteScratch::new();
        query_pass(&mut state, &hood, &table, params.r_int, &mut arena);
        let (h0, m0) = arena.distance_cache().stats();
        query_pass(&mut state, &hood, &table, params.r_int, &mut arena);
        let (h1, m1) = arena.distance_cache().stats();
        // Only the second (warm) pass counts — the fill pass would
        // otherwise cap the reported rate at ~0.5.
        (h1 - h0) as f64 / ((h1 - h0) + (m1 - m0)).max(1) as f64
    };

    // Shuttle candidate-evaluation throughput: 8 two-qubit gates, one
    // chain build + cost replay per center => 16 candidate evaluations
    // per pass.
    let eval_us = |params: &HardwareParams, qubits: u32, runs: u32| {
        let mut state = MappingState::identity(params, qubits).expect("fits");
        let hood = Neighborhood::new(params.r_int);
        let table = NeighborTable::build(state.lattice(), &hood);
        let router = ShuttleRouter::new(params, &MapperConfig::shuttle_only());
        let front = shuttle_frontier(qubits);
        let refs: Vec<&FrontierGate> = front.iter().collect();
        let mut scratch = RouteScratch::new();
        let eval_pass = mean_secs(runs, || {
            let mut ctx =
                RoutingContext::new(&mut state, &hood, &table, params.r_int, &mut scratch);
            router.best_chains(&mut ctx, &refs, &[])
        });
        eval_pass * 1e6 / 16.0
    };
    let candidate_eval_us = eval_us(&params, 24, 50);

    let map_qft = map_ms(&params, &qft24(), 10);

    // ---- round-mode tier: speculative multi-commit vs. single -------
    // The default `map_*` fields above/below run the speculative
    // default; the `_single_ms` twins and the round counters make the
    // multi-commit payoff visible inside one baseline file.
    let (map_qaoa, qaoa_spec) = map_ms_with_stats(&params, &qaoa24(), RoundMode::Speculative, 10);
    let (map_qaoa_single, qaoa_single) =
        map_ms_with_stats(&params, &qaoa24(), RoundMode::Single, 10);
    let commits_per_round_single =
        qaoa_single.commits_total as f64 / qaoa_single.rounds_total.max(1) as f64;
    let commits_per_round_spec =
        qaoa_spec.commits_total as f64 / qaoa_spec.rounds_total.max(1) as f64;
    let candidate_eval_us_single = round_eval_us(&params, RoundMode::Single, 50);
    let candidate_eval_us_spec = round_eval_us(&params, RoundMode::Speculative, 50);

    // ---- paper-scale tier -------------------------------------------
    let p15 = paper_mixed();
    let p30 = huge_mixed();
    let map_qft64_15 = map_ms(&p15, &qft64(), 5);
    let map_qft64_15_single = map_ms_with_stats(&p15, &qft64(), RoundMode::Single, 5).0;
    let map_qaoa80_15 = map_ms(&p15, &qaoa80(), 5);
    let map_qft64_30 = map_ms(&p30, &qft64(), 3);
    let candidate_eval_us_15 = eval_us(&p15, 200, 20);
    let (settled_full_15, settled_bounded_15) = settle_counts(&p15);
    let (settled_full_30, settled_bounded_30) = settle_counts(&p30);

    // ---- mega tier (hierarchical coarse-to-fine routing) ------------
    let p100 = mega_mixed();
    let hybrid = || MapperConfig::try_hybrid(1.0).expect("valid alpha");
    let (map_qft128_100, _) = map_ms_with_cache(&p100, &qft128(), hybrid(), 2);
    let (map_qft128_100_single, _) = map_ms_with_cache(
        &p100,
        &qft128(),
        hybrid().with_round_mode(RoundMode::Single),
        2,
    );
    let (map_qaoa256_100, _) = map_ms_with_cache(&p100, &qaoa256(), hybrid(), 2);
    // Gate-only on purpose: at mega-scale distances the hybrid decider
    // (correctly, Eq. 4–5) sends long-range gates to the shuttle
    // router, which routes on closed-form distances — only the gate
    // router's anchor search consumes the BFS distance cache, so this
    // run is the one whose cache counters measure the real mapping
    // path.
    let (map_megarand_100, cache_megarand) =
        map_ms_with_cache(&p100, &mega_random(), MapperConfig::gate_only(), 2);
    let storm = mega_query_storm(&p100);

    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"routing\",\n  \"lattice\": \"6x6\",\n  \
         \"scale_lattices\": \"15x15,30x30,100x100\",\n  \
         \"host_parallelism\": {host_parallelism},\n  \
         \"distance_query_cold_us\": {:.3},\n  \
         \"distance_query_cached_us\": {:.3},\n  \
         \"cache_speedup\": {:.2},\n  \
         \"cache_hit_rate_cold\": {:.4},\n  \
         \"cache_hit_rate_warm\": {:.4},\n  \
         \"candidate_eval_us\": {:.3},\n  \
         \"candidate_eval_us_single\": {:.3},\n  \
         \"candidate_eval_us_speculative\": {:.3},\n  \
         \"map_hybrid_qft24_ms\": {:.3},\n  \
         \"map_hybrid_qaoa24_ms\": {:.3},\n  \
         \"map_hybrid_qaoa24_single_ms\": {:.3},\n  \
         \"rounds_total_single\": {},\n  \
         \"rounds_total_speculative\": {},\n  \
         \"commits_per_round_single\": {:.3},\n  \
         \"commits_per_round_speculative\": {:.3},\n  \
         \"map_hybrid_qft64_15x15_ms\": {:.3},\n  \
         \"map_hybrid_qft64_15x15_single_ms\": {:.3},\n  \
         \"map_hybrid_qaoa80_15x15_ms\": {:.3},\n  \
         \"map_hybrid_qft64_30x30_ms\": {:.3},\n  \
         \"candidate_eval_us_15x15\": {:.3},\n  \
         \"bfs_settled_full_15x15\": {},\n  \
         \"bfs_settled_bounded_15x15\": {},\n  \
         \"bfs_settled_full_30x30\": {},\n  \
         \"bfs_settled_bounded_30x30\": {},\n  \
         \"map_hybrid_qft128_100x100_ms\": {:.3},\n  \
         \"map_hybrid_qft128_100x100_single_ms\": {:.3},\n  \
         \"map_hybrid_qaoa256_100x100_ms\": {:.3},\n  \
         \"map_gate_megarand_100x100_ms\": {:.3},\n  \
         \"route_cache_megarand_100x100\": {},\n  \
         \"route_cache_storm_100x100\": {}\n}}\n",
        cold * 1e6,
        cached * 1e6,
        cold / cached,
        cold_rate,
        warm_rate,
        candidate_eval_us,
        candidate_eval_us_single,
        candidate_eval_us_spec,
        map_qft,
        map_qaoa,
        map_qaoa_single,
        qaoa_single.rounds_total,
        qaoa_spec.rounds_total,
        commits_per_round_single,
        commits_per_round_spec,
        map_qft64_15,
        map_qft64_15_single,
        map_qaoa80_15,
        map_qft64_30,
        candidate_eval_us_15,
        settled_full_15,
        settled_bounded_15,
        settled_full_30,
        settled_bounded_30,
        map_qft128_100,
        map_qft128_100_single,
        map_qaoa256_100,
        map_megarand_100,
        cache_stats_to_json(&cache_megarand),
        cache_stats_to_json(&storm),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routing.json");
    std::fs::write(path, &json).expect("write BENCH_routing.json");
    println!("wrote {path}:\n{json}");
    assert!(
        cold > cached,
        "cached distance queries must beat per-call BFS (cold {cold:.2e}s vs cached {cached:.2e}s)"
    );
    assert!(
        warm_rate > cold_rate,
        "warm arena must out-hit a cold one ({warm_rate:.3} vs {cold_rate:.3})"
    );
    assert!(
        settled_bounded_15 < settled_full_15 && settled_bounded_30 < settled_full_30,
        "bounded BFS must settle less than a full field \
         (15x15: {settled_bounded_15}/{settled_full_15}, \
         30x30: {settled_bounded_30}/{settled_full_30})"
    );
    // The mega tier's whole point: cache memory stays bounded by the
    // LRU cap no matter how many distinct sources query on the 100×100
    // lattice — in the real CCZ mapping run and under a 4500-source
    // query storm — and the region corridor actually engages.
    let cap = DistanceCache::MAX_RESIDENT_FIELDS as u64;
    assert!(
        cache_megarand.misses > 0 && cache_megarand.peak_entries > 0,
        "mega CCZ mapping must route through the distance cache"
    );
    assert!(
        cache_megarand.peak_entries <= cap && storm.peak_entries <= cap,
        "mega-tier peak resident fields must stay within the LRU cap \
         (mapping {} / storm {} vs cap {cap})",
        cache_megarand.peak_entries,
        storm.peak_entries,
    );
    assert!(
        storm.evictions > 0,
        "a 4500-source storm must overflow the {cap}-entry cap"
    );
    assert!(
        storm.corridor_queries > 0 && storm.regions_touched_per_query() < 8.0,
        "corridor-armed local queries must stay region-local \
         ({} queries, {:.2} regions/query out of {} regions)",
        storm.corridor_queries,
        storm.regions_touched_per_query(),
        13 * 13,
    );
    // Round-mode invariants: single mode commits exactly one candidate
    // per round; the speculative default must actually multi-commit on
    // a frontier-rich QAOA workload and therefore finish in fewer
    // rounds.
    assert_eq!(
        qaoa_single.commits_total, qaoa_single.rounds_total,
        "single mode must commit exactly once per round"
    );
    assert!(
        commits_per_round_spec > 1.0,
        "speculative rounds must multi-commit on QAOA-24 \
         ({:.3} commits/round over {} rounds)",
        commits_per_round_spec,
        qaoa_spec.rounds_total,
    );
    assert!(
        qaoa_spec.rounds_total < qaoa_single.rounds_total,
        "multi-commit rounds must reduce the round count \
         (speculative {} vs single {})",
        qaoa_spec.rounds_total,
        qaoa_single.rounds_total,
    );
}

fn bench_baseline(_c: &mut Criterion) {
    write_baseline();
}

criterion_group!(
    benches,
    bench_distance_cache,
    bench_candidate_eval,
    bench_end_to_end,
    bench_paper_scale,
    bench_baseline
);
criterion_main!(benches);
