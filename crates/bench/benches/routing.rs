//! Routing-engine benchmarks: cold vs. cached `RoutingContext` distance
//! queries, and end-to-end `HybridMapper::map` on QFT-24/QAOA-24 over a
//! 6×6 lattice.
//!
//! Besides the criterion output, this bench writes a machine-readable
//! baseline to `BENCH_routing.json` at the workspace root so future PRs
//! can compare against it.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use na_arch::{HardwareParams, Neighborhood};
use na_circuit::generators::{Qaoa, Qft};
use na_circuit::Circuit;
use na_mapper::{DistanceCache, HybridMapper, MapperConfig, MappingState, RoutingContext};

/// 6×6-lattice scaled mixed hardware, 30 atoms (QFT-24 fits).
fn small_mixed() -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(6, 3.0)
        .num_atoms(30)
        .build()
        .expect("valid")
}

fn qft24() -> Circuit {
    Qft::new(24).build()
}

fn qaoa24() -> Circuit {
    Qaoa::new(24).edges(30).layers(2).seed(5).build()
}

/// One pass of distance queries from every occupied site through
/// `cache` — the identical workload for the cold and cached variants.
fn query_pass(state: &MappingState, hood: &Neighborhood, r_int: f64, cache: &DistanceCache) -> u64 {
    let ctx = RoutingContext::new(state, hood, r_int, cache);
    let mut acc = 0u64;
    for site in state.lattice().iter().filter(|s| !state.is_free(*s)) {
        acc += u64::from(ctx.distances_from(site)[0]);
    }
    acc
}

/// One pass with a fresh cache per query = the old per-call BFS
/// recomputation.
fn query_cold(state: &MappingState, hood: &Neighborhood, r_int: f64) -> u64 {
    let mut acc = 0u64;
    for site in state.lattice().iter().filter(|s| !state.is_free(*s)) {
        let cache = DistanceCache::new();
        let ctx = RoutingContext::new(state, hood, r_int, &cache);
        acc += u64::from(ctx.distances_from(site)[0]);
    }
    acc
}

/// The same pass through a pre-warmed shared cache — the steady state
/// of consecutive SWAP rounds, which never invalidate.
fn query_cached(
    state: &MappingState,
    hood: &Neighborhood,
    r_int: f64,
    warm: &DistanceCache,
) -> u64 {
    query_pass(state, hood, r_int, warm)
}

fn bench_distance_cache(c: &mut Criterion) {
    let params = small_mixed();
    let state = MappingState::identity(&params, 24).expect("fits");
    let hood = Neighborhood::new(params.r_int);
    let warm = DistanceCache::new();
    query_pass(&state, &hood, params.r_int, &warm); // fill the cache
    let mut group = c.benchmark_group("distance_queries");
    group.bench_function("cold", |b| {
        b.iter(|| query_cold(&state, &hood, params.r_int))
    });
    group.bench_function("cached", |b| {
        b.iter(|| query_cached(&state, &hood, params.r_int, &warm))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let params = small_mixed();
    let mut group = c.benchmark_group("map_engine");
    group.sample_size(10);
    for (name, circuit) in [("qft-24", qft24()), ("qaoa-24", qaoa24())] {
        for (mode, config) in [
            (
                "hybrid",
                MapperConfig::try_hybrid(1.0).expect("valid alpha"),
            ),
            ("gate", MapperConfig::gate_only()),
            ("shuttle", MapperConfig::shuttle_only()),
        ] {
            let mapper = HybridMapper::new(params.clone(), config).expect("valid");
            group.bench_function(format!("{mode}/{name}"), |b| {
                b.iter(|| mapper.map(&circuit).expect("mappable"))
            });
        }
    }
    group.finish();
}

/// Mean wall-clock seconds of `f` over `n` runs (after one warm-up).
fn mean_secs<T>(n: u32, mut f: impl FnMut() -> T) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() / f64::from(n)
}

/// Writes the machine-readable baseline consumed by future PRs.
fn write_baseline() {
    let params = small_mixed();
    let state = MappingState::identity(&params, 24).expect("fits");
    let hood = Neighborhood::new(params.r_int);

    let cold = mean_secs(20, || query_cold(&state, &hood, params.r_int));
    let warm = DistanceCache::new();
    query_pass(&state, &hood, params.r_int, &warm);
    let cached = mean_secs(20, || query_cached(&state, &hood, params.r_int, &warm));

    let hybrid = HybridMapper::new(
        params.clone(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .expect("valid");
    let map_qft = mean_secs(10, || hybrid.map(&qft24()).expect("mappable"));
    let map_qaoa = mean_secs(10, || hybrid.map(&qaoa24()).expect("mappable"));

    let json = format!(
        "{{\n  \"bench\": \"routing\",\n  \"lattice\": \"6x6\",\n  \
         \"distance_query_cold_us\": {:.3},\n  \
         \"distance_query_cached_us\": {:.3},\n  \
         \"cache_speedup\": {:.2},\n  \
         \"map_hybrid_qft24_ms\": {:.3},\n  \
         \"map_hybrid_qaoa24_ms\": {:.3}\n}}\n",
        cold * 1e6,
        cached * 1e6,
        cold / cached,
        map_qft * 1e3,
        map_qaoa * 1e3,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routing.json");
    std::fs::write(path, &json).expect("write BENCH_routing.json");
    println!("wrote {path}:\n{json}");
    assert!(
        cold > cached,
        "cached distance queries must beat per-call BFS (cold {cold:.2e}s vs cached {cached:.2e}s)"
    );
}

fn bench_baseline(_c: &mut Criterion) {
    write_baseline();
}

criterion_group!(
    benches,
    bench_distance_cache,
    bench_end_to_end,
    bench_baseline
);
criterion_main!(benches);
