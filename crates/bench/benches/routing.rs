//! Routing-engine benchmarks: cold vs. cached `RoutingContext` distance
//! queries, shuttle candidate-evaluation throughput, and end-to-end
//! `HybridMapper::map` on QFT-24/QAOA-24 over a 6×6 lattice.
//!
//! Besides the criterion output, this bench writes a machine-readable
//! baseline to `BENCH_routing.json` at the workspace root so future PRs
//! can compare against it (the CI bench-regression job consumes
//! `map_hybrid_qft24_ms` and skips when `host_parallelism` differs).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use na_arch::{HardwareParams, Neighborhood};
use na_circuit::generators::{Qaoa, Qft};
use na_circuit::{Circuit, Qubit};
use na_mapper::decision::Capability;
use na_mapper::{
    FrontierGate, HybridMapper, MapperConfig, MappingState, RouteScratch, RoutingContext,
    ShuttleRouter,
};

/// 6×6-lattice scaled mixed hardware, 30 atoms (QFT-24 fits).
fn small_mixed() -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(6, 3.0)
        .num_atoms(30)
        .build()
        .expect("valid")
}

fn qft24() -> Circuit {
    Qft::new(24).build()
}

fn qaoa24() -> Circuit {
    Qaoa::new(24).edges(30).layers(2).seed(5).build()
}

/// One pass of distance queries from every occupied site through the
/// scratch arena's cache — the identical workload for the cold and
/// warm variants.
fn query_pass(
    state: &mut MappingState,
    hood: &Neighborhood,
    r_int: f64,
    scratch: &mut RouteScratch,
) -> u64 {
    let occupied: Vec<_> = state
        .lattice()
        .iter()
        .filter(|s| !state.is_free(*s))
        .collect();
    let ctx = RoutingContext::new(state, hood, r_int, scratch);
    let mut acc = 0u64;
    for site in occupied {
        acc += u64::from(ctx.distances_from(site)[0]);
    }
    acc
}

/// One pass with a fresh arena per query = the old per-call BFS
/// recomputation.
fn query_cold(state: &mut MappingState, hood: &Neighborhood, r_int: f64) -> u64 {
    let occupied: Vec<_> = state
        .lattice()
        .iter()
        .filter(|s| !state.is_free(*s))
        .collect();
    let mut acc = 0u64;
    for site in occupied {
        let mut scratch = RouteScratch::new();
        let ctx = RoutingContext::new(state, hood, r_int, &mut scratch);
        acc += u64::from(ctx.distances_from(site)[0]);
    }
    acc
}

/// An 8-gate shuttle frontier over distant qubit pairs — the candidate
/// evaluation workload (each 2-qubit gate evaluates one chain per
/// center, i.e. two journaled simulate/undo rounds per gate).
fn shuttle_frontier() -> Vec<FrontierGate> {
    (0..8)
        .map(|i| FrontierGate {
            op_index: i,
            qubits: vec![Qubit(i as u32), Qubit((23 - i) as u32)],
            capability: Capability::Shuttling,
        })
        .collect()
}

fn bench_distance_cache(c: &mut Criterion) {
    let params = small_mixed();
    let mut state = MappingState::identity(&params, 24).expect("fits");
    let hood = Neighborhood::new(params.r_int);
    let mut warm = RouteScratch::new();
    query_pass(&mut state, &hood, params.r_int, &mut warm); // fill the cache
    let mut group = c.benchmark_group("distance_queries");
    group.bench_function("cold", |b| {
        b.iter(|| query_cold(&mut state, &hood, params.r_int))
    });
    group.bench_function("cached", |b| {
        b.iter(|| query_pass(&mut state, &hood, params.r_int, &mut warm))
    });
    group.finish();
}

fn bench_candidate_eval(c: &mut Criterion) {
    let params = small_mixed();
    let mut state = MappingState::identity(&params, 24).expect("fits");
    let hood = Neighborhood::new(params.r_int);
    let mut scratch = RouteScratch::new();
    let router = ShuttleRouter::new(&params, &MapperConfig::shuttle_only());
    let front = shuttle_frontier();
    let refs: Vec<&FrontierGate> = front.iter().collect();
    c.bench_function("shuttle_candidates_front8", |b| {
        b.iter(|| {
            let mut ctx = RoutingContext::new(&mut state, &hood, params.r_int, &mut scratch);
            router.best_chains(&mut ctx, &refs, &[])
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let params = small_mixed();
    let mut group = c.benchmark_group("map_engine");
    group.sample_size(10);
    for (name, circuit) in [("qft-24", qft24()), ("qaoa-24", qaoa24())] {
        for (mode, config) in [
            (
                "hybrid",
                MapperConfig::try_hybrid(1.0).expect("valid alpha"),
            ),
            ("gate", MapperConfig::gate_only()),
            ("shuttle", MapperConfig::shuttle_only()),
        ] {
            let mapper = HybridMapper::new(params.clone(), config).expect("valid");
            group.bench_function(format!("{mode}/{name}"), |b| {
                b.iter(|| mapper.map(&circuit).expect("mappable"))
            });
        }
    }
    group.finish();
}

/// Mean wall-clock seconds of `f` over `n` runs (after one warm-up).
fn mean_secs<T>(n: u32, mut f: impl FnMut() -> T) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() / f64::from(n)
}

/// Writes the machine-readable baseline consumed by future PRs and the
/// CI bench-regression job.
fn write_baseline() {
    let params = small_mixed();
    let mut state = MappingState::identity(&params, 24).expect("fits");
    let hood = Neighborhood::new(params.r_int);

    let cold = mean_secs(20, || query_cold(&mut state, &hood, params.r_int));
    let mut warm = RouteScratch::new();
    query_pass(&mut state, &hood, params.r_int, &mut warm);
    let cached = mean_secs(20, || {
        query_pass(&mut state, &hood, params.r_int, &mut warm)
    });

    // Cache hit rates over one query pass: a cold arena misses every
    // query, the warm arena should serve (nearly) everything.
    let cold_rate = {
        let mut fresh = RouteScratch::new();
        query_pass(&mut state, &hood, params.r_int, &mut fresh);
        let (hits, misses) = fresh.distance_cache().stats();
        hits as f64 / (hits + misses).max(1) as f64
    };
    let warm_rate = {
        let mut arena = RouteScratch::new();
        query_pass(&mut state, &hood, params.r_int, &mut arena);
        let (h0, m0) = arena.distance_cache().stats();
        query_pass(&mut state, &hood, params.r_int, &mut arena);
        let (h1, m1) = arena.distance_cache().stats();
        // Only the second (warm) pass counts — the fill pass would
        // otherwise cap the reported rate at ~0.5.
        (h1 - h0) as f64 / ((h1 - h0) + (m1 - m0)).max(1) as f64
    };

    // Shuttle candidate-evaluation throughput: 8 two-qubit gates, one
    // chain build + cost replay per center => 16 candidate evaluations
    // per pass.
    let router = ShuttleRouter::new(&params, &MapperConfig::shuttle_only());
    let front = shuttle_frontier();
    let refs: Vec<&FrontierGate> = front.iter().collect();
    let mut scratch = RouteScratch::new();
    let eval_pass = mean_secs(50, || {
        let mut ctx = RoutingContext::new(&mut state, &hood, params.r_int, &mut scratch);
        router.best_chains(&mut ctx, &refs, &[])
    });
    let candidate_eval_us = eval_pass * 1e6 / 16.0;

    let hybrid = HybridMapper::new(
        params.clone(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .expect("valid");
    let map_qft = mean_secs(10, || hybrid.map(&qft24()).expect("mappable"));
    let map_qaoa = mean_secs(10, || hybrid.map(&qaoa24()).expect("mappable"));

    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"routing\",\n  \"lattice\": \"6x6\",\n  \
         \"host_parallelism\": {host_parallelism},\n  \
         \"distance_query_cold_us\": {:.3},\n  \
         \"distance_query_cached_us\": {:.3},\n  \
         \"cache_speedup\": {:.2},\n  \
         \"cache_hit_rate_cold\": {:.4},\n  \
         \"cache_hit_rate_warm\": {:.4},\n  \
         \"candidate_eval_us\": {:.3},\n  \
         \"map_hybrid_qft24_ms\": {:.3},\n  \
         \"map_hybrid_qaoa24_ms\": {:.3}\n}}\n",
        cold * 1e6,
        cached * 1e6,
        cold / cached,
        cold_rate,
        warm_rate,
        candidate_eval_us,
        map_qft * 1e3,
        map_qaoa * 1e3,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routing.json");
    std::fs::write(path, &json).expect("write BENCH_routing.json");
    println!("wrote {path}:\n{json}");
    assert!(
        cold > cached,
        "cached distance queries must beat per-call BFS (cold {cold:.2e}s vs cached {cached:.2e}s)"
    );
    assert!(
        warm_rate > cold_rate,
        "warm arena must out-hit a cold one ({warm_rate:.3} vs {cold_rate:.3})"
    );
}

fn bench_baseline(_c: &mut Criterion) {
    write_baseline();
}

criterion_group!(
    benches,
    bench_distance_cache,
    bench_candidate_eval,
    bench_end_to_end,
    bench_baseline
);
criterion_main!(benches);
