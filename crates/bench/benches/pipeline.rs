//! Pipeline benchmarks: fused single-pass compile vs. the legacy
//! two-pass flow, and `compile_batch` throughput at 1/2/4 threads over
//! the Table-1 generator mix.
//!
//! Besides the criterion output, this bench writes a machine-readable
//! baseline to `BENCH_pipeline.json` at the workspace root. Thread
//! scaling is only meaningful on multi-core hosts; the JSON records
//! `host_parallelism` so readers can interpret the batch numbers.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use na_arch::{HardwareParams, Lattice, Site};
use na_circuit::generators::{Qaoa, Qft};
use na_circuit::Circuit;
use na_mapper::{HybridMapper, MapperConfig};
use na_pipeline::{Compiler, MappingOptions, Pipeline};
use na_schedule::aod_program::{lower_batch, validate_program};
use na_schedule::{AodProgram, ScheduleMetrics, ScheduledItem, Scheduler};

/// 6×6-lattice scaled mixed hardware, 30 atoms (QFT-24 fits).
fn small_mixed() -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(6, 3.0)
        .num_atoms(30)
        .build()
        .expect("valid")
}

/// Legacy construction path (the deprecated shim), kept measurable so
/// `BENCH_pipeline.json` records the builder-vs-legacy construction
/// overhead.
#[allow(deprecated)]
fn legacy_pipeline(params: &HardwareParams, config: MapperConfig) -> Pipeline {
    Pipeline::new(params.clone(), config).expect("valid")
}

/// The redesigned construction path: a `Compiler` session built for the
/// square-lattice target with the same configuration.
fn builder_compiler(params: &HardwareParams, config: MapperConfig) -> Compiler {
    Compiler::for_target(params)
        .mapping(MappingOptions::custom(config))
        .build()
        .expect("valid")
}

/// Mega-tier target: 100×100 lattice, 4000 atoms (QFT-128 fits with
/// head-room) — the scale where the scheduler's hot loops, not the
/// mapper, used to dominate the fused compile.
fn mega_mixed() -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(100, 3.0)
        .num_atoms(4000)
        .build()
        .expect("valid")
}

fn qft24() -> Circuit {
    Qft::new(24).build()
}

fn qaoa24() -> Circuit {
    Qaoa::new(24).edges(30).layers(2).seed(5).build()
}

/// The legacy multi-pass flow the pipeline fuses, exactly as the
/// pre-pipeline harness (`run_experiment`) and examples composed it to
/// get everything a [`CompiledProgram`] now carries: materialize the
/// mapped stream, re-walk it for the schedule artifact, compute metrics
/// post-hoc, call `Scheduler::compare` for the Table-1a report (which
/// re-schedules both the mapped stream and the ideal baseline from
/// scratch — the second-pass drift risk), and hand-wire AOD lowering +
/// validation on top.
///
/// [`CompiledProgram`]: na_pipeline::CompiledProgram
fn two_pass(
    mapper: &HybridMapper,
    scheduler: &Scheduler,
    params: &HardwareParams,
    circuit: &Circuit,
) -> usize {
    let outcome = mapper.map(circuit).expect("mappable");
    let schedule = scheduler.schedule_mapped(&outcome.mapped);
    let metrics = ScheduleMetrics::of(&schedule, params);
    let report = scheduler.compare(circuit, &outcome.mapped);
    let lattice = Lattice::new(params.lattice_side);
    let mut site_of_atom: Vec<Site> = mapper
        .config()
        .initial_layout
        .place(&lattice, params.num_atoms);
    let mut programs: Vec<AodProgram> = Vec::new();
    for item in &schedule.items {
        if let ScheduledItem::AodBatch { moves, .. } = item {
            let program = lower_batch(moves);
            validate_program(&program, &lattice, &site_of_atom).expect("valid batch");
            for m in moves {
                site_of_atom[m.atom.index()] = m.to;
            }
            programs.push(program);
        }
    }
    schedule.len() + programs.len() + metrics.cz_count + report.moves
}

/// The fused single pass through the pipeline: identical outputs
/// (mapped stream, schedule, metrics, Table-1a comparison, validated
/// AOD programs), with the mapped schedule and its metrics derived
/// exactly once.
fn fused(pipeline: &Pipeline, circuit: &Circuit) -> usize {
    let program = pipeline.compile(circuit).expect("compiles");
    program.schedule.len()
        + program.aod_programs.len()
        + program.metrics.cz_count
        + program.comparison.expect("baseline on").moves
}

/// The Table-1 generator mix sized for the small lattice, tripled so a
/// batch has enough work items to spread across workers.
fn table1_mix(params: &HardwareParams) -> Vec<Circuit> {
    let suite = na_bench::scaled_suite(0.12, params.num_atoms - 2);
    let mut batch = Vec::new();
    for _ in 0..3 {
        batch.extend(suite.iter().map(|(_, c)| c.clone()));
    }
    batch
}

fn bench_fused_vs_two_pass(c: &mut Criterion) {
    let params = small_mixed();
    let mapper = HybridMapper::new(
        params.clone(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .expect("valid");
    let scheduler = Scheduler::new(params.clone());
    let pipeline = legacy_pipeline(&params, MapperConfig::try_hybrid(1.0).expect("valid alpha"));
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    for (name, circuit) in [("qft-24", qft24()), ("qaoa-24", qaoa24())] {
        group.bench_function(format!("fused/{name}"), |b| {
            b.iter(|| fused(&pipeline, &circuit))
        });
        group.bench_function(format!("two-pass/{name}"), |b| {
            b.iter(|| two_pass(&mapper, &scheduler, &params, &circuit))
        });
    }
    group.finish();
}

fn bench_batch_threads(c: &mut Criterion) {
    let params = small_mixed();
    let pipeline = legacy_pipeline(&params, MapperConfig::try_hybrid(1.0).expect("valid alpha"))
        .with_baseline(false);
    let batch = table1_mix(&params);
    let mut group = c.benchmark_group("compile_batch");
    group.sample_size(10);
    // Multi-thread variants only where real cores exist (see
    // `write_baseline` — on 1 core they measure oversubscription).
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let thread_counts: &[usize] = if host == 1 { &[1] } else { &[1, 2, 4] };
    for &threads in thread_counts {
        group.bench_function(format!("{threads}-threads"), |b| {
            b.iter(|| {
                let results = pipeline.compile_batch(&batch, threads);
                assert!(results.iter().all(|r| r.is_ok()));
            })
        });
    }
    group.finish();
}

/// Mean wall-clock seconds of `f` over `n` runs (after one warm-up).
fn mean_secs<T>(n: u32, mut f: impl FnMut() -> T) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() / f64::from(n)
}

/// Paired, interleaved latency comparison: runs `a` and `b` in
/// alternating order (a-b, b-a, a-b, …) and returns the mean wall-clock
/// seconds of each over `n` pairs. Interleaving cancels the systematic
/// drift (allocator warm-up, frequency scaling) that phase-separated
/// measurement bakes into whichever side runs first, and adjacent runs
/// share thermal state, so the paired difference resolves latency gaps
/// well below the per-run noise floor.
fn paired_mean_secs<T, U>(
    n: u32,
    mut a: impl FnMut() -> T,
    mut b: impl FnMut() -> U,
) -> (f64, f64) {
    for _ in 0..3 {
        a();
        b();
    }
    let (mut sum_a, mut sum_b) = (0.0f64, 0.0f64);
    let mut time_a = |sum: &mut f64| {
        let t = Instant::now();
        a();
        *sum += t.elapsed().as_secs_f64();
    };
    let mut time_b = |sum: &mut f64| {
        let t = Instant::now();
        b();
        *sum += t.elapsed().as_secs_f64();
    };
    for i in 0..n {
        if i % 2 == 0 {
            time_a(&mut sum_a);
            time_b(&mut sum_b);
        } else {
            time_b(&mut sum_b);
            time_a(&mut sum_a);
        }
    }
    (sum_a / f64::from(n), sum_b / f64::from(n))
}

/// Runs `blocks` independent paired comparisons of `pairs` pairs each
/// and returns the latencies of the block with the **median b/a ratio**
/// — robust against frequency-scaling dips that hit a whole block.
fn median_block_secs<T, U>(
    blocks: usize,
    pairs: u32,
    mut a: impl FnMut() -> T,
    mut b: impl FnMut() -> U,
) -> (f64, f64) {
    let mut results: Vec<(f64, f64)> = (0..blocks)
        .map(|_| paired_mean_secs(pairs, &mut a, &mut b))
        .collect();
    results.sort_by(|x, y| {
        (x.1 / x.0)
            .partial_cmp(&(y.1 / y.0))
            .expect("finite ratios")
    });
    results[blocks / 2]
}

/// Writes the machine-readable baseline consumed by future PRs.
fn write_baseline() {
    let params = small_mixed();
    let mapper = HybridMapper::new(
        params.clone(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .expect("valid");
    let scheduler = Scheduler::new(params.clone());
    let pipeline = legacy_pipeline(&params, MapperConfig::try_hybrid(1.0).expect("valid alpha"));

    // Headline comparison on QAOA-24: the schedule/metrics share of its
    // compile is the largest of the suite, so the fused saving (the
    // mapped schedule and its metrics derived once instead of thrice —
    // `compare` re-schedules from scratch) is resolvable above the
    // paired-measurement noise floor. QFT-24 is ~97% routing, where the
    // relative saving is small; it is reported alongside. Median over
    // measurement blocks discards frequency-scaling dips that even
    // interleaving cannot cancel.
    let circuit = qaoa24();
    let (fused_s, two_pass_s) = median_block_secs(
        12,
        250,
        || fused(&pipeline, &circuit),
        || two_pass(&mapper, &scheduler, &params, &circuit),
    );
    let qft = qft24();
    let (fused_qft_s, two_pass_qft_s) = median_block_secs(
        8,
        60,
        || fused(&pipeline, &qft),
        || two_pass(&mapper, &scheduler, &params, &qft),
    );

    let batch = table1_mix(&params);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runs = 8;
    let throughput = |threads: usize| {
        let secs = mean_secs(runs, || {
            let results = pipeline.compile_batch(&batch, threads);
            assert!(results.iter().all(|r| r.is_ok()));
        });
        batch.len() as f64 / secs
    };
    let t1 = throughput(1);
    // Multi-thread throughput is only meaningful with real cores: on a
    // 1-core host the 2t/4t numbers measure oversubscription noise
    // (time-slicing the same core plus scheduler overhead), which reads
    // as a phantom "slowdown". Record `null` instead of a misleading
    // ratio; the bench_guard JSON parser treats `null` as absent.
    let (t2, t4) = if host == 1 {
        (None, None)
    } else {
        (Some(throughput(2)), Some(throughput(4)))
    };

    // Mega tier: one-shot fused compiles of QFT-128 on the 100×100/4000
    // target — the scale where scheduling used to be ~55% of the
    // compile before the restriction index and the delta batch
    // validator. `schedule_share_qft128` reads the new per-phase stats
    // (schedule phase over total runtime, averaged across the runs).
    let mega = mega_mixed();
    let mega_compiler = Compiler::for_target(&mega)
        .mapping(MappingOptions::custom(
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        ))
        .build()
        .expect("valid");
    let qft128 = Qft::new(128).build();
    let mega_runs = 3u32;
    drop(mega_compiler.compile(&qft128).expect("compiles")); // warm-up
    let mut schedule_share = 0.0f64;
    let mega_start = Instant::now();
    for _ in 0..mega_runs {
        let program = mega_compiler.compile(&qft128).expect("compiles");
        schedule_share +=
            program.stats.schedule_phase.as_secs_f64() / program.stats.total_runtime.as_secs_f64();
    }
    let mega_s = mega_start.elapsed().as_secs_f64() / f64::from(mega_runs);
    schedule_share /= f64::from(mega_runs);

    // Construction overhead of the redesigned builder session vs the
    // legacy `Pipeline::new` shim (which now delegates to the builder,
    // so the two should be within noise of each other). Paired and
    // interleaved like the compile comparison.
    let construct_cfg = MapperConfig::try_hybrid(1.0).expect("valid alpha");
    let (builder_s, legacy_s) = paired_mean_secs(
        2000,
        || builder_compiler(&params, construct_cfg.clone()),
        || legacy_pipeline(&params, construct_cfg.clone()),
    );

    // `batch_throughput_{2,4}t_per_s` / `batch_speedup_4t` semantics:
    // circuits-per-second of `compile_batch` at that worker count, and
    // the 4t/1t ratio — or `null` when `host_parallelism == 1`, where
    // the measurement would only quantify oversubscription noise.
    let fmt_opt = |v: Option<f64>| match v {
        Some(v) => format!("{v:.2}"),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"lattice\": \"6x6\",\n  \
         \"host_parallelism\": {host},\n  \
         \"fused_qaoa24_ms\": {:.4},\n  \
         \"two_pass_qaoa24_ms\": {:.4},\n  \
         \"fused_speedup\": {:.3},\n  \
         \"fused_qft24_ms\": {:.3},\n  \
         \"two_pass_qft24_ms\": {:.3},\n  \
         \"fused_speedup_qft24\": {:.3},\n  \
         \"batch_size\": {},\n  \
         \"batch_throughput_1t_per_s\": {:.2},\n  \
         \"batch_throughput_2t_per_s\": {},\n  \
         \"batch_throughput_4t_per_s\": {},\n  \
         \"batch_speedup_4t\": {},\n  \
         \"fused_qft128_100x100_ms\": {:.2},\n  \
         \"schedule_share_qft128\": {:.4},\n  \
         \"builder_construct_us\": {:.3},\n  \
         \"legacy_construct_us\": {:.3},\n  \
         \"builder_vs_legacy_construct\": {:.3}\n}}\n",
        fused_s * 1e3,
        two_pass_s * 1e3,
        two_pass_s / fused_s,
        fused_qft_s * 1e3,
        two_pass_qft_s * 1e3,
        two_pass_qft_s / fused_qft_s,
        batch.len(),
        t1,
        fmt_opt(t2),
        fmt_opt(t4),
        fmt_opt(t4.map(|t| t / t1)),
        mega_s * 1e3,
        schedule_share,
        builder_s * 1e6,
        legacy_s * 1e6,
        builder_s / legacy_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {path}:\n{json}");

    assert!(
        fused_s <= two_pass_s,
        "fused compile must not exceed two-pass latency \
         (fused {fused_s:.2e}s vs two-pass {two_pass_s:.2e}s)"
    );
    assert!(
        fused_qft_s <= two_pass_qft_s * 1.03,
        "fused compile must stay within noise of two-pass on \
         routing-dominated workloads \
         (fused {fused_qft_s:.2e}s vs two-pass {two_pass_qft_s:.2e}s)"
    );
    // The builder session must not cost meaningfully more to construct
    // than the legacy shim it replaces (both validate once; the
    // builder's extra work is one TargetSpec clone). Generous bound:
    // construction is nanoseconds against multi-ms compiles.
    assert!(
        builder_s <= legacy_s * 3.0 + 20e-6,
        "builder construction regressed: {:.2}us vs legacy {:.2}us",
        builder_s * 1e6,
        legacy_s * 1e6,
    );
    // The point of the scheduler hot-path rework: scheduling must no
    // longer dominate the mega compile (it was ~55% of it before the
    // restriction index and the delta batch validator).
    assert!(
        schedule_share < 0.35,
        "schedule share regressed to {schedule_share:.2} of the mega compile"
    );
    // Thread scaling needs actual cores; on a single-core host the
    // 2t/4t runs are skipped entirely (recorded as `null`).
    match t4 {
        Some(t4) if host >= 4 => assert!(
            t4 >= 2.0 * t1,
            "4-thread batch throughput must reach 2x single-thread \
             ({t4:.1}/s vs {t1:.1}/s on {host} cores)"
        ),
        Some(t4) => assert!(
            t4 >= 0.8 * t1,
            "batch front-end must not regress on a {host}-core host \
             ({t4:.1}/s vs {t1:.1}/s)"
        ),
        None => {}
    }
}

fn bench_baseline(_c: &mut Criterion) {
    write_baseline();
}

criterion_group!(
    benches,
    bench_fused_vs_two_pass,
    bench_batch_threads,
    bench_baseline
);
criterion_main!(benches);
