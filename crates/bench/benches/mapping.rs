//! Criterion benchmarks: end-to-end mapping throughput per compiler mode
//! and hardware preset (the performance side of the Table 1a RT column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use na_arch::HardwareParams;
use na_bench::scaled_preset;
use na_circuit::generators::{GraphState, Qft, Reversible};
use na_circuit::{decompose_to_native, Circuit};
use na_mapper::{HybridMapper, MapperConfig};
use na_schedule::Scheduler;

fn bench_suite() -> Vec<(&'static str, Circuit)> {
    vec![
        ("graph-50", GraphState::new(50).edges(54).seed(7).build()),
        ("qft-50", Qft::new(50).build()),
        (
            "bn-24",
            decompose_to_native(
                &Reversible::new(24)
                    .counts(&[(2, 33), (3, 22)])
                    .seed(11)
                    .build(),
            ),
        ),
    ]
}

fn bench_mapping_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("map");
    group.sample_size(10);
    let params = scaled_preset(HardwareParams::mixed(), 0.35);
    for (name, circuit) in bench_suite() {
        for (mode, config) in [
            ("shuttle", MapperConfig::shuttle_only()),
            ("gate", MapperConfig::gate_only()),
            (
                "hybrid",
                MapperConfig::try_hybrid(1.0).expect("valid alpha"),
            ),
        ] {
            let mapper = HybridMapper::new(params.clone(), config).expect("valid");
            group.bench_with_input(BenchmarkId::new(mode, name), &circuit, |b, circuit| {
                b.iter(|| mapper.map(circuit).expect("mappable"))
            });
        }
    }
    group.finish();
}

fn bench_hardware_presets(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_hw");
    group.sample_size(10);
    let circuit = Qft::new(50).build();
    for preset in HardwareParams::table1_presets() {
        let name = preset.name.clone();
        let params = scaled_preset(preset, 0.35);
        let mapper = HybridMapper::new(params, MapperConfig::try_hybrid(1.0).expect("valid alpha"))
            .expect("valid");
        group.bench_function(BenchmarkId::new("hybrid", name), |b| {
            b.iter(|| mapper.map(&circuit).expect("mappable"))
        });
    }
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    let params = scaled_preset(HardwareParams::mixed(), 0.35);
    let circuit = Qft::new(50).build();
    let mapper = HybridMapper::new(
        params.clone(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .expect("valid");
    let mapped = mapper.map(&circuit).expect("mappable").mapped;
    let scheduler = Scheduler::new(params);
    group.bench_function("mapped_qft50", |b| {
        b.iter(|| scheduler.schedule_mapped(&mapped))
    });
    group.bench_function("original_qft50", |b| {
        b.iter(|| scheduler.schedule_original(&circuit))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mapping_modes,
    bench_hardware_presets,
    bench_scheduling
);
criterion_main!(benches);
