//! Compile-service benchmarks: end-to-end request latency through
//! `na-serve` (cold compile vs. artifact-cache hit), worker-pool
//! throughput at 1/2/4 workers, the cache hit rate on repeated
//! submissions, tail latency under scripted worker deaths
//! (`p99_under_faults_ms`), and the turnaround of an expired-deadline
//! abort (`serve_cancel_p50_ms`).
//!
//! Besides the criterion output, this bench writes a machine-readable
//! baseline to `BENCH_serve.json` at the workspace root;
//! `serve_p50_ms` is watched by the CI `bench_guard`. Worker scaling is
//! only meaningful on multi-core hosts; the JSON records
//! `host_parallelism` and stores `null` for the multi-worker fields on
//! single-core runners (the guard treats `null` as "legitimately not
//! measured").

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use na_circuit::generators::{GraphState, Qft};
use na_circuit::qasm::to_qasm;
use na_schedule::export::json_escape;
use na_serve::{error_kind_of, CompileService, FaultPlan, ServeConfig, Submission};

/// A v1 job document on the 6×6 mixed preset (20 atoms).
fn job_doc(name: &str, qasm: &str) -> String {
    format!(
        "{{\"version\": 1, \
         \"target\": {{\"preset\": \"mixed\", \"lattice_side\": 6, \"num_atoms\": 20}}, \
         \"mapping\": {{\"mode\": \"hybrid\", \"alpha\": 1.0}}, \
         \"circuits\": [{{\"name\": \"{name}\", \"qasm\": \"{}\"}}]}}",
        json_escape(qasm),
    )
}

/// The same document with a request deadline attached.
fn job_doc_deadline(name: &str, qasm: &str, deadline_ms: u64) -> String {
    format!(
        "{{\"version\": 1, \"deadline_ms\": {deadline_ms}, \
         \"target\": {{\"preset\": \"mixed\", \"lattice_side\": 6, \"num_atoms\": 20}}, \
         \"mapping\": {{\"mode\": \"hybrid\", \"alpha\": 1.0}}, \
         \"circuits\": [{{\"name\": \"{name}\", \"qasm\": \"{}\"}}]}}",
        json_escape(qasm),
    )
}

/// `n` structurally distinct request documents: alternating QFT widths
/// and graph-state seeds so every document misses the artifact cache.
fn distinct_documents(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let circuit = if i % 2 == 0 {
                Qft::new(8 + (i % 4) as u32).build()
            } else {
                GraphState::new(12).edges(16).seed(i as u64).build()
            };
            job_doc(&format!("doc-{i}"), &to_qasm(&circuit))
        })
        .collect()
}

fn service(workers: usize, queue_cap: usize) -> CompileService {
    CompileService::start(ServeConfig {
        workers,
        queue_cap,
        cache_budget_bytes: 64 << 20,
        ..ServeConfig::default()
    })
}

fn bench_round_trip(c: &mut Criterion) {
    let svc = service(1, 8);
    let cold_docs = distinct_documents(12);
    let hot_doc = cold_docs[0].clone();
    svc.submit_wait(&hot_doc).expect("warms the cache");
    let mut group = c.benchmark_group("serve");
    group.sample_size(20);
    // The artifact-cache hit path: parse + hash + LRU probe, no
    // compile.
    group.bench_function("cache-hit", |b| {
        b.iter(|| svc.submit_wait(&hot_doc).expect("served"))
    });
    group.finish();
    svc.shutdown();
}

/// Client-observed percentile over raw latency samples.
fn percentile_ms(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx] * 1e3
}

/// Writes the machine-readable baseline consumed by future PRs.
fn write_baseline() {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let docs = distinct_documents(24);

    // --- Cold latency: every document compiles (one worker, so the
    // measurement is per-request service latency, not pool scaling).
    let svc = service(1, docs.len());
    let mut cold_s: Vec<f64> = docs
        .iter()
        .map(|doc| {
            let t = Instant::now();
            let response = svc.submit_wait(doc).expect("accepted");
            assert!(response.contains("\"ok\":true"), "compile failed");
            t.elapsed().as_secs_f64()
        })
        .collect();

    // --- Warm latency + hit rate: the same documents again, all of
    // which must be served from the artifact cache.
    let mut hit_s: Vec<f64> = docs
        .iter()
        .map(|doc| {
            let t = Instant::now();
            match svc.submit(doc).expect("accepted") {
                Submission::Cached(_) => t.elapsed().as_secs_f64(),
                other => panic!("expected cache hit, got {other:?}"),
            }
        })
        .collect();
    let metrics = svc.metrics_json();
    svc.shutdown();

    let p50 = percentile_ms(&mut cold_s, 0.50);
    let p99 = percentile_ms(&mut cold_s, 0.99);
    let hit_p50 = percentile_ms(&mut hit_s, 0.50);
    // 24 misses (cold round) + 24 hits (warm round) = 0.5 exactly; read
    // it back from the service's own counters rather than assuming.
    let hit_rate = {
        let hits = read_uint(&metrics, "\"artifact_cache\":{\"hits\":");
        let misses = read_uint(&metrics, "\"misses\":");
        hits as f64 / (hits + misses) as f64
    };

    // --- Worker-pool throughput: enqueue the whole batch, then drain.
    // A fresh service per run keeps the artifact cache cold so every
    // request really compiles.
    let throughput = |workers: usize| {
        let runs = 4;
        let mut best = 0.0f64;
        for _ in 0..runs {
            let svc = service(workers, docs.len());
            let t = Instant::now();
            let receivers: Vec<_> = docs
                .iter()
                .map(|doc| match svc.submit(doc).expect("accepted") {
                    Submission::Pending(rx) => rx,
                    other => panic!("cold service must compile, got {other:?}"),
                })
                .collect();
            for rx in receivers {
                let response = rx.recv().expect("answered");
                assert!(response.contains("\"ok\":true"));
            }
            let rate = docs.len() as f64 / t.elapsed().as_secs_f64();
            best = best.max(rate);
            svc.shutdown();
        }
        best
    };
    let t1 = throughput(1);
    // Multi-worker throughput needs real cores: on a 1-core host the
    // 2w/4w numbers measure time-slicing overhead, which reads as a
    // phantom "slowdown". Record `null`; bench_guard skips nulls.
    let (t2, t4) = if host == 1 {
        (None, None)
    } else {
        (Some(throughput(2)), Some(throughput(4)))
    };

    // --- Latency under faults: the same cold stream served by a worker
    // pool that is scripted to die three times mid-run. Every request
    // still gets exactly one typed reply; clients retry the "internal"
    // replies once, and the recorded latency is the full client-observed
    // time including that retry. The seeded `FaultPlan` makes the run
    // reproducible.
    let mut fault_s: Vec<f64> = {
        let plan = FaultPlan::parse("kill@2,kill@9,kill@16").expect("valid fault spec");
        let svc = CompileService::start(ServeConfig {
            workers: 1,
            queue_cap: docs.len(),
            cache_budget_bytes: 64 << 20,
            fault: Some(Arc::new(plan)),
        });
        let samples = docs
            .iter()
            .map(|doc| {
                let t = Instant::now();
                let mut response = svc.submit_wait(doc).expect("accepted");
                if error_kind_of(&response) == Some("internal") {
                    // The scripted worker death consumed this job; one
                    // retry lands on the respawned worker.
                    response = svc.submit_wait(doc).expect("accepted on retry");
                }
                assert!(
                    response.contains("\"ok\":true"),
                    "compile failed under faults"
                );
                t.elapsed().as_secs_f64()
            })
            .collect();
        let m = svc.metrics_json();
        svc.shutdown();
        assert_eq!(
            read_uint(&m, "\"worker_panics\":"),
            3,
            "all three kills fired"
        );
        samples
    };
    let fault_p99 = percentile_ms(&mut fault_s, 0.99);

    // --- Cancellation latency: how quickly an already-expired deadline
    // (`deadline_ms: 0`) is answered. The request clears admission, is
    // dequeued by a worker, fails the expiry check before compiling, and
    // gets the typed deadline reply — the recorded latency is the abort
    // turnaround, never a full compile.
    let mut cancel_s: Vec<f64> = {
        let svc = service(1, 8);
        let samples = (0..12)
            .map(|i| {
                let doc =
                    job_doc_deadline(&format!("cancel-{i}"), &to_qasm(&Qft::new(16).build()), 0);
                let t = Instant::now();
                let response = svc.submit_wait(&doc).expect("accepted");
                assert_eq!(
                    error_kind_of(&response),
                    Some("deadline"),
                    "expired deadline must produce a typed deadline reply"
                );
                t.elapsed().as_secs_f64()
            })
            .collect();
        svc.shutdown();
        samples
    };
    let cancel_p50 = percentile_ms(&mut cancel_s, 0.50);

    let fmt_opt = |v: Option<f64>| match v {
        Some(v) => format!("{v:.2}"),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"lattice\": \"6x6\",\n  \
         \"host_parallelism\": {host},\n  \
         \"requests\": {},\n  \
         \"serve_p50_ms\": {p50:.3},\n  \
         \"serve_p99_ms\": {p99:.3},\n  \
         \"serve_hit_p50_ms\": {hit_p50:.4},\n  \
         \"serve_cache_hit_rate\": {hit_rate:.3},\n  \
         \"serve_throughput_1w_per_s\": {t1:.2},\n  \
         \"serve_throughput_2w_per_s\": {},\n  \
         \"serve_throughput_4w_per_s\": {},\n  \
         \"serve_speedup_4w\": {},\n  \
         \"p99_under_faults_ms\": {fault_p99:.3},\n  \
         \"serve_cancel_p50_ms\": {cancel_p50:.3}\n}}\n",
        docs.len(),
        fmt_opt(t2),
        fmt_opt(t4),
        fmt_opt(t4.map(|t| t / t1)),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}:\n{json}");

    assert!(p50 <= p99, "percentiles out of order");
    assert!(
        (hit_rate - 0.5).abs() < 1e-9,
        "expected exactly half the lookups to hit, got {hit_rate}"
    );
    // A cache hit skips the compile entirely; it must be far below the
    // cold median (generous 2x bound against timer noise on tiny
    // compiles).
    assert!(
        hit_p50 <= p50 * 2.0,
        "cache-hit path slower than cold compiles: {hit_p50:.3}ms vs {p50:.3}ms"
    );
    // Answering an expired deadline aborts at the first cancellation
    // checkpoint instead of finishing the compile; it must not cost
    // more than a regular cold request (generous 2x bound against
    // timer noise).
    assert!(
        cancel_p50 <= p50 * 2.0,
        "deadline abort slower than a full compile: {cancel_p50:.3}ms vs {p50:.3}ms"
    );
    // Worker scaling sanity on real multi-core hosts.
    match t4 {
        Some(t4) if host >= 4 => assert!(
            t4 >= 1.5 * t1,
            "4-worker throughput must scale ({t4:.1}/s vs {t1:.1}/s on {host} cores)"
        ),
        Some(t4) => assert!(
            t4 >= 0.8 * t1,
            "worker pool must not regress on a {host}-core host ({t4:.1}/s vs {t1:.1}/s)"
        ),
        None => {}
    }
}

/// Reads the unsigned integer right after `prefix` in a compact JSON
/// document (first occurrence).
fn read_uint(doc: &str, prefix: &str) -> u64 {
    let at = doc.find(prefix).expect("metric present") + prefix.len();
    let digits: String = doc[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().expect("number")
}

fn bench_baseline(_c: &mut Criterion) {
    write_baseline();
}

criterion_group!(benches, bench_round_trip, bench_baseline);
criterion_main!(benches);
