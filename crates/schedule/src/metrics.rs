//! Fidelity metrics: the approximate success probability of Eq. (1) and
//! the Table 1a comparison quantities.
//!
//! Eq. (1) of the paper:
//!
//! ```text
//! P = exp(−t_idle / T_eff) · Π_O F_O,     T_eff = T1·T2 / (T1 + T2)
//! t_idle = n·T − Σ_O t_O
//! ```
//!
//! Everything is computed in log₁₀ space: a 200-qubit QFT accumulates
//! thousands of sub-unity factors and `P` underflows `f64` long before the
//! ratio `P_mapped/P_original` stops being meaningful. The paper's
//! `δF = −log(P_mapped/P_original)` is then a plain difference of
//! log-probabilities (base 10, matching the magnitudes reported in
//! Table 1a).

use na_arch::HardwareParams;
use serde::{Deserialize, Serialize};

use crate::items::{Schedule, ScheduledItem};

/// Aggregate metrics of one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Total execution time `T` in µs.
    pub makespan_us: f64,
    /// Total idle time `t_idle = n·T − Σ_O t_O` (clamped at 0), µs.
    pub idle_us: f64,
    /// `log₁₀ Π F_O` — the gate-fidelity part of Eq. (1).
    pub log10_gate_fidelity: f64,
    /// `log₁₀ P` — the full approximate success probability.
    pub log10_success: f64,
    /// CZ-family gate count (SWAPs counted as 3).
    pub cz_count: usize,
    /// Individual shuttle move count.
    pub move_count: usize,
}

impl ScheduleMetrics {
    /// Computes the metrics of `schedule` under `params`.
    pub fn of(schedule: &Schedule, params: &HardwareParams) -> Self {
        let mut ln_fidelity = 0.0f64;
        let mut busy_us = 0.0f64;
        for item in &schedule.items {
            busy_us += item.duration_us();
            ln_fidelity += ScheduleMetrics::item_ln_fidelity(item, params);
        }
        ScheduleMetrics::from_accumulators(
            schedule.makespan_us,
            busy_us,
            ln_fidelity,
            schedule.num_qubits,
            schedule.cz_count(),
            schedule.move_count(),
            params,
        )
    }

    /// The `ln F_O` contribution of one scheduled item — the per-item
    /// factor of Eq. (1)'s fidelity product. Shared by [`Self::of`] and
    /// the op-by-op accumulation in
    /// [`crate::IncrementalScheduler`], so the two paths cannot drift.
    pub fn item_ln_fidelity(item: &ScheduledItem, params: &HardwareParams) -> f64 {
        match item {
            ScheduledItem::SingleQubit { .. } => params.f_single.ln(),
            ScheduledItem::Rydberg { atoms, .. } => params.cz_family_fidelity(atoms.len()).ln(),
            ScheduledItem::SwapComposite { .. } => params.swap_fidelity().ln(),
            ScheduledItem::AodBatch { moves, .. } => {
                moves.len() as f64 * params.f_shuttle.max(f64::MIN_POSITIVE).ln()
            }
        }
    }

    /// Assembles the Eq. (1) metrics from streaming accumulators
    /// (`busy_us = Σ t_O`, `ln_fidelity = Σ ln F_O`). The other half of
    /// the shared formula behind [`Self::of`] and the incremental
    /// scheduler.
    #[allow(clippy::too_many_arguments)]
    pub fn from_accumulators(
        makespan_us: f64,
        busy_us: f64,
        ln_fidelity: f64,
        num_qubits: u32,
        cz_count: usize,
        move_count: usize,
        params: &HardwareParams,
    ) -> Self {
        let n = f64::from(num_qubits);
        let idle_us = (n * makespan_us - busy_us).max(0.0);
        let ln10 = std::f64::consts::LN_10;
        let log10_gate_fidelity = ln_fidelity / ln10;
        let log10_success = log10_gate_fidelity - idle_us / params.t_eff_us() / ln10;
        ScheduleMetrics {
            makespan_us,
            idle_us,
            log10_gate_fidelity,
            log10_success,
            cz_count,
            move_count,
        }
    }

    /// The approximate success probability `P` (may underflow to 0 for
    /// large circuits — prefer [`ScheduleMetrics::log10_success`]).
    pub fn success_probability(&self) -> f64 {
        10f64.powf(self.log10_success)
    }
}

/// The Table 1a comparison between an original and a mapped schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Additional CZ gates introduced by routing (`ΔCZ`).
    pub delta_cz: isize,
    /// Execution time overhead in µs (`ΔT`).
    pub delta_t_us: f64,
    /// Fidelity decrease `δF = −log₁₀(P_mapped/P_original)`; smaller is
    /// better, 0 means the mapping is free.
    pub delta_f: f64,
    /// Shuttle moves in the mapped schedule.
    pub moves: usize,
    /// Metrics of the original schedule.
    pub original: ScheduleMetrics,
    /// Metrics of the mapped schedule.
    pub mapped: ScheduleMetrics,
}

impl ComparisonReport {
    /// Builds the report from the two metric sets.
    pub fn between(original: &ScheduleMetrics, mapped: &ScheduleMetrics) -> Self {
        ComparisonReport {
            delta_cz: mapped.cz_count as isize - original.cz_count as isize,
            delta_t_us: mapped.makespan_us - original.makespan_us,
            delta_f: original.log10_success - mapped.log10_success,
            moves: mapped.move_count,
            original: *original,
            mapped: *mapped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_arch::Site;
    use na_mapper::AtomId;

    fn single(atom: u32, start: f64) -> ScheduledItem {
        ScheduledItem::SingleQubit {
            atom: AtomId(atom),
            site: Site::new(atom as i32, 0),
            start_us: start,
            duration_us: 0.5,
            op_index: None,
        }
    }

    fn schedule_of(items: Vec<ScheduledItem>, n: u32) -> Schedule {
        let makespan = items.iter().map(|i| i.end_us()).fold(0.0, f64::max);
        Schedule {
            items,
            makespan_us: makespan,
            num_qubits: n,
            num_atoms: n + 2,
        }
    }

    #[test]
    fn idle_time_formula() {
        let p = HardwareParams::mixed();
        // Two sequential single-qubit gates on different qubits:
        // T = 1.0, Σt_O = 1.0, n = 2 → idle = 2·1.0 − 1.0 = 1.0.
        let s = schedule_of(vec![single(0, 0.0), single(1, 0.5)], 2);
        let m = ScheduleMetrics::of(&s, &p);
        assert!((m.idle_us - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_accumulates_in_log_space() {
        let p = HardwareParams::mixed();
        let s = schedule_of(vec![single(0, 0.0), single(1, 0.0)], 2);
        let m = ScheduleMetrics::of(&s, &p);
        let expect = 2.0 * p.f_single.log10();
        assert!((m.log10_gate_fidelity - expect).abs() < 1e-12);
        assert!(m.log10_success <= m.log10_gate_fidelity);
    }

    #[test]
    fn shuttle_fidelity_counts_per_move_not_per_batch() {
        let p = HardwareParams::gate_based(); // f_shuttle = 0.999
        let batch = ScheduledItem::AodBatch {
            moves: vec![
                crate::items::BatchedMove {
                    atom: AtomId(0),
                    from: Site::new(0, 0),
                    to: Site::new(0, 2),
                },
                crate::items::BatchedMove {
                    atom: AtomId(1),
                    from: Site::new(1, 0),
                    to: Site::new(1, 2),
                },
            ],
            start_us: 0.0,
            duration_us: 100.0,
        };
        let s = schedule_of(vec![batch], 2);
        let m = ScheduleMetrics::of(&s, &p);
        let expect = 2.0 * p.f_shuttle.log10();
        assert!((m.log10_gate_fidelity - expect).abs() < 1e-12);
    }

    #[test]
    fn comparison_is_zero_for_identical_schedules() {
        let p = HardwareParams::mixed();
        let s = schedule_of(vec![single(0, 0.0)], 1);
        let m = ScheduleMetrics::of(&s, &p);
        let r = ComparisonReport::between(&m, &m);
        assert_eq!(r.delta_cz, 0);
        assert_eq!(r.delta_t_us, 0.0);
        assert_eq!(r.delta_f, 0.0);
    }

    #[test]
    fn perfect_shuttles_cost_only_idle_time() {
        let p = HardwareParams::shuttling(); // f_shuttle = 1
        let batch = ScheduledItem::AodBatch {
            moves: vec![crate::items::BatchedMove {
                atom: AtomId(0),
                from: Site::new(0, 0),
                to: Site::new(0, 2),
            }],
            start_us: 0.0,
            duration_us: 50.0,
        };
        let s = schedule_of(vec![batch], 2);
        let m = ScheduleMetrics::of(&s, &p);
        assert_eq!(m.log10_gate_fidelity, 0.0);
        assert!(m.log10_success < 0.0, "idle time still decays success");
    }

    #[test]
    fn success_probability_roundtrip() {
        let p = HardwareParams::mixed();
        let s = schedule_of(vec![single(0, 0.0)], 1);
        let m = ScheduleMetrics::of(&s, &p);
        assert!((m.success_probability().log10() - m.log10_success).abs() < 1e-9);
    }
}
