//! Spatial index over active Rydberg intervals for restriction checks.
//!
//! [`respect_restriction`](crate::IncrementalScheduler) must delay a
//! Rydberg gate until no time-overlapping Rydberg interval holds an atom
//! within `r_restr` of the gate's sites. The seed implementation scanned
//! the full active-interval list per push — O(intervals) geometry tests
//! per gate, and the list never shrinks while any atom stays idle (its
//! availability pins the prune low-water mark at 0). [`RestrictIndex`]
//! buckets intervals by the coarse [`RegionGrid`] partition the mapper
//! already uses (PR 6), so a query only walks the region rings that can
//! possibly hold a site within the restriction radius.
//!
//! # Why the index is a pure filter
//!
//! The delay fixpoint has an order-independent solution: for any
//! conflicting interval `(s, e)` overlapping `[t, t + dur)`, every
//! feasible start `t' ≥ t` satisfies `t' ≥ e` (starting before `s`
//! would need `t' < t`). The loop only ever advances `t` to interval
//! end times, never past the minimal feasible start, so it converges to
//! that unique minimum from **any** superset of the conflicting
//! intervals — scanning extra non-conflicting intervals (which fail the
//! exact [`geometry::sets_clear_of`] test) or visiting candidates in a
//! different order cannot change the resulting `f64`. The index
//! therefore only needs to be *conservative*: report every interval
//! with a site within `r_restr` of a query site; reporting more is
//! harmless, reporting fewer would be a missed restriction.
//!
//! The ring cutoff is exact in integer arithmetic:
//! [`RegionGrid::ring_min_cells`] lower-bounds the distance between
//! sites whose regions are Chebyshev ring distance `k` apart, so ring
//! `k` is skipped iff `ring_min_cells(side, k)² >`
//! [`Site::within_threshold_sq`]`(r)` — the same integer threshold the
//! geometry test uses, so no float rounding can disagree.
//!
//! Retired intervals (every future gate starts at or after the
//! scheduler's availability low-water mark, so intervals ending at or
//! before it can never overlap again) are removed from their buckets a
//! few slab slots per insertion — an amortized-O(1) round-robin sweep.
//! Keeping an interval past its retirement point is conservative, so
//! the lag never changes a delay.

use na_arch::{geometry, Lattice, RegionGrid, Site};

/// Interval ids are slab indices; slots recycle through a free list.
type IntervalId = u32;

/// One active Rydberg interval: `[start, end)` in µs over `sites`.
/// `sites` doubles as the liveness flag — a retired slot's vector is
/// empty (gates always have at least one site).
#[derive(Debug, Clone, Default)]
struct IntervalSlot {
    start: f64,
    end: f64,
    sites: Vec<Site>,
}

/// Region-bucketed index of active Rydberg intervals.
///
/// Buckets may transiently hold ids of retired-and-reused slots; a
/// reused id aliases the *new* interval from a stale region, which only
/// adds it as a candidate (conservative — the exact geometry test still
/// decides). Insertion removes the interval's own bucket entries on
/// retirement, so stale entries are bounded by the sweep lag.
#[derive(Debug, Clone)]
pub struct RestrictIndex {
    lattice: Lattice,
    /// Region edge length in lattice cells (≥ 1).
    side: u32,
    regions_x: u32,
    regions_y: u32,
    /// Dense site index → region id (from [`RegionGrid::partition`]).
    region_of: Vec<u32>,
    /// Largest region ring that can hold a site within the restriction
    /// radius of a query site.
    k_max: u32,
    /// The restriction radius, passed through unchanged to the exact
    /// geometry test.
    r: f64,
    /// Interval slab; `free` lists retired slots for reuse.
    slots: Vec<IntervalSlot>,
    free: Vec<IntervalId>,
    /// Region id → live interval ids whose sites touch the region.
    buckets: Vec<Vec<IntervalId>>,
    /// Round-robin retirement cursor over the slab.
    sweep_cursor: usize,
    /// Per-interval query stamp (deduplicates candidates across the
    /// overlapping rings of a multi-site gate).
    stamp: Vec<u32>,
    generation: u32,
    /// Candidate ids of the current query.
    candidates: Vec<IntervalId>,
}

/// Slab slots examined for retirement per insertion. Any constant keeps
/// the sweep amortized O(1); 4 retires a full slab within a quarter of
/// the insertions that built it.
const SWEEP_PER_INSERT: usize = 4;

impl RestrictIndex {
    /// Builds an empty index for `lattice` with restriction radius `r`.
    ///
    /// The region side adapts to the radius (`max(1, ⌈r⌉)` cells,
    /// capped at [`RegionGrid::DEFAULT_SIDE`]) so a query's ring walk
    /// stays a small constant number of regions while each region
    /// covers at most one radius of sites.
    pub fn new(lattice: Lattice, r: f64) -> Self {
        let side = (r.ceil().max(1.0) as u32).clamp(1, RegionGrid::DEFAULT_SIDE);
        let (regions_x, regions_y, region_of) = RegionGrid::partition(&lattice, side);
        let threshold_sq = Site::within_threshold_sq(r);
        // Ring k is reachable iff its minimal site distance can still
        // conflict under the integer threshold — the exact test the
        // geometry kernel applies, so the cutoff can never under-filter.
        let mut k_max = 0u32;
        while i64::from(RegionGrid::ring_min_cells(side, k_max + 1)).pow(2) <= threshold_sq {
            k_max += 1;
        }
        RestrictIndex {
            lattice,
            side,
            regions_x,
            regions_y,
            region_of,
            k_max,
            r,
            slots: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); (regions_x * regions_y) as usize],
            sweep_cursor: 0,
            stamp: Vec::new(),
            generation: 0,
            candidates: Vec::new(),
        }
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Returns `true` if no interval is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts the interval `[start, end)` over `sites`, taking
    /// ownership of the site buffer (returned to the caller's pool on
    /// retirement via `recycle`). `low_water` is the scheduler's
    /// availability low-water mark: a few retirable slots (ending at or
    /// before it) are swept out per call.
    pub fn insert(
        &mut self,
        start: f64,
        end: f64,
        sites: Vec<Site>,
        low_water: f64,
        recycle: &mut Vec<Vec<Site>>,
    ) {
        debug_assert!(
            !sites.is_empty(),
            "Rydberg intervals cover at least one site"
        );
        self.sweep(low_water, recycle);
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = IntervalSlot { start, end, sites };
                id
            }
            None => {
                self.slots.push(IntervalSlot { start, end, sites });
                self.stamp.push(0);
                (self.slots.len() - 1) as IntervalId
            }
        };
        self.bucket_interval(id, |bucket, id| bucket.push(id));
    }

    /// The minimal start `t ≥ t0` at which `[t, t + dur)` overlaps no
    /// conflicting interval — byte-identical to the linear scan over
    /// all live intervals (see the module docs for why).
    pub fn earliest_clear(&mut self, sites: &[Site], mut t0: f64, dur: f64) -> f64 {
        self.collect_candidates(sites);
        loop {
            let mut moved = false;
            for &id in &self.candidates {
                let slot = &self.slots[id as usize];
                if slot.sites.is_empty() {
                    continue; // retired (stale bucket entry)
                }
                let overlaps = slot.start < t0 + dur && slot.end > t0;
                if overlaps && !geometry::sets_clear_of(sites, &slot.sites, self.r) {
                    t0 = slot.end;
                    moved = true;
                }
            }
            if !moved {
                return t0;
            }
        }
    }

    /// Gathers the deduplicated candidate ids whose regions fall within
    /// `k_max` rings of any query site.
    fn collect_candidates(&mut self, sites: &[Site]) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Wrapped: clear all stamps once so stale generations can
            // never alias the new cycle.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 1;
        }
        let generation = self.generation;
        self.candidates.clear();
        // Split borrows: the ring walk reads buckets and writes
        // stamp/candidates.
        let RestrictIndex {
            buckets,
            stamp,
            candidates,
            regions_x,
            regions_y,
            side,
            k_max,
            ..
        } = self;
        for site in sites {
            let cx = site.x as u32 / *side;
            let cy = site.y as u32 / *side;
            for k in 0..=*k_max {
                RegionGrid::for_each_ring_region(
                    *regions_x,
                    *regions_y,
                    cx,
                    cy,
                    k,
                    &mut |rx, ry| {
                        let region = (ry * *regions_x + rx) as usize;
                        for &id in &buckets[region] {
                            if stamp[id as usize] != generation {
                                stamp[id as usize] = generation;
                                candidates.push(id);
                            }
                        }
                    },
                );
            }
        }
    }

    /// Visits every bucket of `id`'s interval (one per distinct region
    /// its sites touch).
    fn bucket_interval(
        &mut self,
        id: IntervalId,
        mut apply: impl FnMut(&mut Vec<IntervalId>, IntervalId),
    ) {
        // Gates have ≤ 3 sites; linear dedup over the visited regions.
        let mut seen = [u32::MAX; 8];
        let mut n = 0usize;
        let slot_sites = std::mem::take(&mut self.slots[id as usize].sites);
        for site in &slot_sites {
            let region = self.region_of[self.lattice.index(*site)];
            if !seen[..n].contains(&region) {
                if n < seen.len() {
                    seen[n] = region;
                    n += 1;
                }
                apply(&mut self.buckets[region as usize], id);
            }
        }
        self.slots[id as usize].sites = slot_sites;
    }

    /// Retires up to [`SWEEP_PER_INSERT`] slots whose intervals end at
    /// or before `low_water` — the same condition the seed's per-call
    /// compaction used (`end > low_water` keeps), applied lazily.
    fn sweep(&mut self, low_water: f64, recycle: &mut Vec<Vec<Site>>) {
        if self.slots.is_empty() {
            return;
        }
        for _ in 0..SWEEP_PER_INSERT.min(self.slots.len()) {
            self.sweep_cursor = (self.sweep_cursor + 1) % self.slots.len();
            let id = self.sweep_cursor as IntervalId;
            let slot = &self.slots[self.sweep_cursor];
            if slot.sites.is_empty() || slot.end > low_water {
                continue;
            }
            self.bucket_interval(id, |bucket, id| {
                if let Some(pos) = bucket.iter().position(|&b| b == id) {
                    bucket.swap_remove(pos);
                }
            });
            let mut sites = std::mem::take(&mut self.slots[self.sweep_cursor].sites);
            sites.clear();
            recycle.push(sites);
            self.free.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: the seed's linear fixpoint over an explicit list.
    fn linear_earliest_clear(
        intervals: &[(f64, f64, Vec<Site>)],
        sites: &[Site],
        mut t0: f64,
        dur: f64,
        r: f64,
    ) -> f64 {
        loop {
            let mut moved = false;
            for (start, end, other) in intervals {
                let overlaps = *start < t0 + dur && *end > t0;
                if overlaps && !geometry::sets_clear_of(sites, other, r) {
                    t0 = *end;
                    moved = true;
                }
            }
            if !moved {
                return t0;
            }
        }
    }

    #[test]
    fn matches_linear_scan_on_a_dense_stream() {
        let lattice = Lattice::new(12);
        let r = 2.5;
        let mut index = RestrictIndex::new(lattice, r);
        let mut reference: Vec<(f64, f64, Vec<Site>)> = Vec::new();
        let mut pool = Vec::new();
        // Deterministic pseudo-random site/time stream.
        let mut seed = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut t = 0.0f64;
        for _ in 0..400 {
            let x = (next() % 12) as i32;
            let y = (next() % 12) as i32;
            let sites = vec![Site::new(x, y), Site::new((x + 1).min(11), y)];
            let dur = 0.2 + (next() % 5) as f64 * 0.1;
            let idx_t = index.earliest_clear(&sites, t, dur);
            let ref_t = linear_earliest_clear(&reference, &sites, t, dur, r);
            assert_eq!(
                idx_t.to_bits(),
                ref_t.to_bits(),
                "delay must be bit-identical"
            );
            index.insert(idx_t, idx_t + dur, sites.clone(), 0.0, &mut pool);
            reference.push((ref_t, ref_t + dur, sites));
            if next() % 3 == 0 {
                t += 0.15;
            }
        }
        assert_eq!(index.len(), 400);
    }

    #[test]
    fn retirement_matches_eager_pruning() {
        let lattice = Lattice::new(10);
        let r = 2.5;
        let mut index = RestrictIndex::new(lattice, r);
        let mut reference: Vec<(f64, f64, Vec<Site>)> = Vec::new();
        let mut pool = Vec::new();
        let mut seed = 99u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed >> 33
        };
        let mut low_water = 0.0f64;
        for i in 0..300 {
            let x = (next() % 10) as i32;
            let y = (next() % 10) as i32;
            let sites = vec![Site::new(x, y)];
            let t0 = low_water + (next() % 4) as f64 * 0.05;
            let dur = 0.2;
            // Eager reference pruning (the seed's compaction).
            reference.retain(|(_, end, _)| *end > low_water);
            let idx_t = index.earliest_clear(&sites, t0, dur);
            let ref_t = linear_earliest_clear(&reference, &sites, t0, dur, r);
            assert_eq!(idx_t.to_bits(), ref_t.to_bits(), "step {i}");
            index.insert(idx_t, idx_t + dur, sites.clone(), low_water, &mut pool);
            reference.push((idx_t, idx_t + dur, sites));
            if i % 7 == 0 {
                low_water += 0.3;
            }
        }
        // Lazy retirement must eventually free slots.
        assert!(index.len() < 300, "retired intervals must leave the slab");
    }

    /// Drives one random stream through the index and the seed's linear
    /// scan, asserting bit-identical delays at every step. The reference
    /// keeps every interval forever while the index retires ones ending
    /// at or before the advancing low-water mark — retired intervals
    /// cannot overlap any later query (`t0 ≥ low_water`), so the delays
    /// must still agree exactly.
    fn assert_stream_equivalence(lattice: Lattice, r: f64, ops: &[(usize, usize, f64, f64, u8)]) {
        let mut index = RestrictIndex::new(lattice, r);
        let mut reference: Vec<(f64, f64, Vec<Site>)> = Vec::new();
        let mut pool = Vec::new();
        let mut low_water = 0.0f64;
        let n = lattice.num_sites();
        for (step, &(a, b, dt, dur, adv)) in ops.iter().enumerate() {
            let sites = vec![lattice.site(a % n), lattice.site(b % n)];
            let t0 = low_water + dt;
            let idx_t = index.earliest_clear(&sites, t0, dur);
            let ref_t = linear_earliest_clear(&reference, &sites, t0, dur, r);
            assert_eq!(idx_t.to_bits(), ref_t.to_bits(), "step {step}");
            index.insert(idx_t, idx_t + dur, sites.clone(), low_water, &mut pool);
            reference.push((ref_t, ref_t + dur, sites));
            if adv % 4 == 0 {
                low_water += dur * 0.5;
            }
        }
    }

    proptest::proptest! {
        /// Property form of the ISSUE's equivalence requirement:
        /// index-filtered delays ≡ linear-scan delays on random Rydberg
        /// streams (square lattice).
        #[test]
        fn index_matches_linear_scan_square(
            side in 4u32..13,
            r in 0.8f64..4.0,
            ops in proptest::collection::vec(
                (0usize..100_000, 0usize..100_000, 0.0f64..6.0, 0.05f64..2.5, 0u8..8),
                1..120,
            ),
        ) {
            assert_stream_equivalence(Lattice::new(side), r, &ops);
        }

        /// Same equivalence over a zoned lattice, whose storage gaps
        /// leave whole region buckets permanently empty.
        #[test]
        fn index_matches_linear_scan_zoned(
            side in 5u32..13,
            zone in 1u32..4,
            gap in 1u32..3,
            r in 0.8f64..4.0,
            ops in proptest::collection::vec(
                (0usize..100_000, 0usize..100_000, 0.0f64..6.0, 0.05f64..2.5, 0u8..8),
                1..120,
            ),
        ) {
            let lattice = Lattice::zoned(side, zone, gap).expect("valid banding");
            assert_stream_equivalence(lattice, r, &ops);
        }
    }

    #[test]
    fn zoned_lattice_queries_cover_all_rings() {
        let lattice = Lattice::zoned(9, 2, 1).expect("valid banding");
        let r = 3.0;
        let mut index = RestrictIndex::new(lattice, r);
        let mut pool = Vec::new();
        // An interval at one end of the lattice...
        let far = vec![Site::new(0, 0)];
        index.insert(0.0, 1.0, far, 0.0, &mut pool);
        // ...conflicts with a query within r, not with one beyond it.
        let near = index.earliest_clear(&[Site::new(3, 0)], 0.0, 1.0);
        assert_eq!(near, 1.0);
        let clear = index.earliest_clear(&[Site::new(8, 8)], 0.0, 1.0);
        assert_eq!(clear, 0.0);
    }
}
