//! Schedule export and utilization statistics.
//!
//! [`to_csv`] serializes a schedule as Gantt-style event rows for
//! external plotting; [`Utilization`] summarizes per-atom busy fractions
//! (the physical counterpart of the idle time entering Eq. (1)).
//!
//! The `*_to_json` family serializes the pipeline's result types as JSON
//! fragments. They are hand-written: the vendored `serde` stand-in is a
//! marker-only stub (see `vendor/README.md`), so the workspace's
//! `#[derive(Serialize)]` attributes document intent while these writers
//! do the actual work. `na-pipeline` composes them into the single JSON
//! document of a `CompiledProgram`.

use std::fmt::Write as _;

use na_mapper::{AtomId, CacheStats, MapStats};
use serde::{Deserialize, Serialize};

use crate::aod_program::{AodInstruction, AodProgram};
use crate::items::{Schedule, ScheduledItem};
use crate::metrics::{ComparisonReport, ScheduleMetrics};

/// Serializes the schedule as CSV with one row per scheduled item:
/// `kind,start_us,duration_us,atoms,detail`.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::Circuit;
/// use na_schedule::{export::to_csv, Scheduler};
/// let params = HardwareParams::mixed()
///     .to_builder().lattice(4, 3.0).num_atoms(8).build()?;
/// let mut c = Circuit::new(2);
/// c.h(0).cz(0, 1);
/// let csv = to_csv(&Scheduler::new(params).schedule_original(&c));
/// assert!(csv.starts_with("kind,start_us,duration_us,atoms,detail"));
/// assert_eq!(csv.lines().count(), 3); // header + 2 items
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_csv(schedule: &Schedule) -> String {
    let mut out = String::from("kind,start_us,duration_us,atoms,detail\n");
    for item in &schedule.items {
        let atoms = item
            .atoms()
            .iter()
            .map(|a| a.0.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let (kind, detail) = match item {
            ScheduledItem::SingleQubit { op_index, .. } => {
                ("single", op_index.map_or(String::new(), |i| i.to_string()))
            }
            ScheduledItem::Rydberg {
                op_index, atoms, ..
            } => (
                "rydberg",
                format!(
                    "arity={}{}",
                    atoms.len(),
                    op_index.map_or(String::new(), |i| format!(" op={i}"))
                ),
            ),
            ScheduledItem::SwapComposite { .. } => ("swap", String::new()),
            ScheduledItem::AodBatch { moves, .. } => ("aod", format!("moves={}", moves.len())),
        };
        let _ = writeln!(
            out,
            "{kind},{:.3},{:.3},{atoms},{detail}",
            item.start_us(),
            item.duration_us()
        );
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values,
/// which JSON cannot represent).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental builder for a flat JSON object.
///
/// The hand-rolled `*_to_json` writers above each format one known
/// result type; service-layer code (metrics endpoints, error documents)
/// assembles objects field by field instead. This builder keeps that
/// assembly from re-implementing comma/escape bookkeeping at every call
/// site.
///
/// ```
/// use na_schedule::export::JsonObject;
/// let mut o = JsonObject::new();
/// o.uint("jobs", 3).num("p50_ms", 1.5).str("state", "ok");
/// assert_eq!(o.finish(), "{\"jobs\":3,\"p50_ms\":1.5,\"state\":\"ok\"}");
/// ```
#[derive(Debug, Clone)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            body: String::from("{"),
        }
    }

    fn key(&mut self, name: &str) -> &mut Self {
        if self.body.len() > 1 {
            self.body.push(',');
        }
        let _ = write!(self.body, "\"{}\":", json_escape(name));
        self
    }

    /// Appends a floating-point field (`null` for non-finite values).
    pub fn num(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        self.body.push_str(&json_f64(value));
        self
    }

    /// Appends an unsigned integer field.
    pub fn uint(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Appends a string field, escaped.
    pub fn str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        let _ = write!(self.body, "\"{}\"", json_escape(value));
        self
    }

    /// Appends a pre-serialized JSON fragment verbatim (object, array,
    /// or literal). The caller guarantees it is well-formed.
    pub fn raw(&mut self, name: &str, fragment: &str) -> &mut Self {
        self.key(name);
        self.body.push_str(fragment);
        self
    }

    /// Closes the object and returns the document.
    pub fn finish(mut self) -> String {
        self.body.push('}');
        self.body
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializes [`ScheduleMetrics`] as a JSON object.
pub fn metrics_to_json(m: &ScheduleMetrics) -> String {
    format!(
        "{{\"makespan_us\":{},\"idle_us\":{},\"log10_gate_fidelity\":{},\
         \"log10_success\":{},\"cz_count\":{},\"move_count\":{}}}",
        json_f64(m.makespan_us),
        json_f64(m.idle_us),
        json_f64(m.log10_gate_fidelity),
        json_f64(m.log10_success),
        m.cz_count,
        m.move_count,
    )
}

/// Serializes a [`ComparisonReport`] (the Table 1a quantities plus both
/// metric sets) as a JSON object.
pub fn comparison_to_json(r: &ComparisonReport) -> String {
    format!(
        "{{\"delta_cz\":{},\"delta_t_us\":{},\"delta_f\":{},\"moves\":{},\
         \"original\":{},\"mapped\":{}}}",
        r.delta_cz,
        json_f64(r.delta_t_us),
        json_f64(r.delta_f),
        r.moves,
        metrics_to_json(&r.original),
        metrics_to_json(&r.mapped),
    )
}

/// Serializes the mapper's [`MapStats`] as a JSON object.
pub fn map_stats_to_json(s: &MapStats) -> String {
    format!(
        "{{\"swaps_inserted\":{},\"shuttle_moves\":{},\
         \"gates_gate_routed\":{},\"gates_shuttle_routed\":{}}}",
        s.swaps_inserted, s.shuttle_moves, s.gates_gate_routed, s.gates_shuttle_routed,
    )
}

/// Serializes the routing-layer [`CacheStats`] (distance-cache and
/// region/corridor counters of the hierarchical router) as a JSON
/// object.
///
/// Key names match the benchmark baseline (`BENCH_routing.json`) so the
/// regression guard's flat key scanner finds them whether they come
/// from a compiled program or a bench run: `cache_evictions`,
/// `cache_peak_entries` and `regions_touched_per_query` are the
/// watched names.
pub fn cache_stats_to_json(s: &CacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"sites_settled\":{},\
         \"cache_evictions\":{},\"cache_peak_entries\":{},\
         \"corridor_queries\":{},\"corridor_pruned\":{},\
         \"regions_touched\":{},\"regions_touched_per_query\":{}}}",
        s.hits,
        s.misses,
        s.sites_settled,
        s.evictions,
        s.peak_entries,
        s.corridor_queries,
        s.corridor_pruned,
        s.regions_touched,
        json_f64(s.regions_touched_per_query()),
    )
}

/// Serializes a [`Schedule`] as a JSON object: aggregates plus one entry
/// per scheduled item (the JSON counterpart of [`to_csv`]).
pub fn schedule_to_json(schedule: &Schedule) -> String {
    let mut items = String::from("[");
    for (i, item) in schedule.items.iter().enumerate() {
        if i > 0 {
            items.push(',');
        }
        let kind = match item {
            ScheduledItem::SingleQubit { .. } => "single",
            ScheduledItem::Rydberg { .. } => "rydberg",
            ScheduledItem::SwapComposite { .. } => "swap",
            ScheduledItem::AodBatch { .. } => "aod",
        };
        let atoms = item
            .atoms()
            .iter()
            .map(|a| a.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let _ = write!(
            items,
            "{{\"kind\":\"{kind}\",\"start_us\":{},\"duration_us\":{},\"atoms\":[{atoms}]}}",
            json_f64(item.start_us()),
            json_f64(item.duration_us()),
        );
    }
    items.push(']');
    format!(
        "{{\"makespan_us\":{},\"num_qubits\":{},\"num_atoms\":{},\
         \"cz_count\":{},\"batch_count\":{},\"move_count\":{},\"items\":{items}}}",
        json_f64(schedule.makespan_us),
        schedule.num_qubits,
        schedule.num_atoms,
        schedule.cz_count(),
        schedule.batch_count(),
        schedule.move_count(),
    )
}

/// Serializes a lowered [`AodProgram`] as a JSON object with its native
/// instruction stream.
pub fn aod_program_to_json(program: &AodProgram) -> String {
    let mut instrs = String::from("[");
    for (i, instr) in program.instructions.iter().enumerate() {
        if i > 0 {
            instrs.push(',');
        }
        match instr {
            AodInstruction::ActivateRow { row, cols } => {
                let cols = cols
                    .iter()
                    .map(|c| json_f64(*c))
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = write!(
                    instrs,
                    "{{\"op\":\"activate_row\",\"row\":{},\"cols\":[{cols}]}}",
                    json_f64(*row)
                );
            }
            AodInstruction::Offset { dx, dy } => {
                let _ = write!(
                    instrs,
                    "{{\"op\":\"offset\",\"dx\":{},\"dy\":{}}}",
                    json_f64(*dx),
                    json_f64(*dy)
                );
            }
            AodInstruction::Translate { rows, cols } => {
                let fmt_pairs = |pairs: &[(f64, f64)]| {
                    pairs
                        .iter()
                        .map(|&(f, t)| format!("[{},{}]", json_f64(f), json_f64(t)))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let _ = write!(
                    instrs,
                    "{{\"op\":\"translate\",\"rows\":[{}],\"cols\":[{}]}}",
                    fmt_pairs(rows),
                    fmt_pairs(cols)
                );
            }
            AodInstruction::Deactivate => instrs.push_str("{\"op\":\"deactivate\"}"),
        }
    }
    instrs.push(']');
    let moves = program
        .moves
        .iter()
        .map(|m| {
            format!(
                "{{\"atom\":{},\"from\":[{},{}],\"to\":[{},{}]}}",
                m.atom.0, m.from.x, m.from.y, m.to.x, m.to.y
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"load_steps\":{},\"moves\":[{moves}],\"instructions\":{instrs}}}",
        program.load_steps()
    )
}

/// Per-atom utilization of a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// Makespan in µs.
    pub makespan_us: f64,
    /// Busy time per atom in µs, indexed by atom id.
    pub busy_us: Vec<f64>,
}

impl Utilization {
    /// Computes per-atom busy times from a schedule.
    pub fn of(schedule: &Schedule) -> Self {
        let mut busy = vec![0.0f64; schedule.num_atoms as usize];
        for item in &schedule.items {
            for atom in item.atoms() {
                busy[atom.index()] += item.duration_us();
            }
        }
        Utilization {
            makespan_us: schedule.makespan_us,
            busy_us: busy,
        }
    }

    /// Busy fraction of one atom in `[0, 1]`.
    pub fn fraction(&self, atom: AtomId) -> f64 {
        if self.makespan_us > 0.0 {
            (self.busy_us[atom.index()] / self.makespan_us).min(1.0)
        } else {
            0.0
        }
    }

    /// Mean busy fraction over all atoms.
    pub fn mean_fraction(&self) -> f64 {
        if self.busy_us.is_empty() || self.makespan_us <= 0.0 {
            return 0.0;
        }
        self.busy_us.iter().sum::<f64>() / (self.busy_us.len() as f64 * self.makespan_us)
    }

    /// The busiest atom and its fraction.
    pub fn busiest(&self) -> Option<(AtomId, f64)> {
        self.busy_us
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| {
                let atom = AtomId(i as u32);
                (atom, self.fraction(atom))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Scheduler;
    use na_arch::HardwareParams;
    use na_circuit::generators::GraphState;
    use na_mapper::{HybridMapper, MapperConfig};

    fn sample_schedule() -> (Schedule, HardwareParams) {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(5, 3.0)
            .num_atoms(14)
            .build()
            .expect("valid");
        let circuit = GraphState::new(12).edges(16).seed(4).build();
        let mapped = HybridMapper::new(
            params.clone(),
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        )
        .expect("valid")
        .map(&circuit)
        .expect("mappable")
        .mapped;
        (
            Scheduler::new(params.clone()).schedule_mapped(&mapped),
            params,
        )
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn schedule_json_lists_every_item() {
        let (schedule, _) = sample_schedule();
        let json = schedule_to_json(&schedule);
        assert_eq!(json.matches("\"kind\":").count(), schedule.len());
        assert!(json.contains("\"makespan_us\":"));
        assert!(json.contains("\"rydberg\""));
    }

    #[test]
    fn metrics_and_comparison_json_shapes() {
        let (schedule, params) = sample_schedule();
        let m = crate::ScheduleMetrics::of(&schedule, &params);
        let mj = metrics_to_json(&m);
        assert!(mj.starts_with('{') && mj.ends_with('}'));
        assert!(mj.contains("\"log10_success\":"));
        let r = crate::ComparisonReport::between(&m, &m);
        let rj = comparison_to_json(&r);
        assert!(rj.contains("\"delta_cz\":0"));
        assert!(rj.contains("\"original\":{"));
    }

    #[test]
    fn cache_stats_json_carries_guarded_keys() {
        let stats = CacheStats {
            hits: 10,
            misses: 4,
            sites_settled: 1200,
            evictions: 3,
            peak_entries: 96,
            corridor_queries: 4,
            corridor_pruned: 2,
            regions_touched: 36,
        };
        let json = cache_stats_to_json(&stats);
        assert!(json.contains("\"cache_evictions\":3"));
        assert!(json.contains("\"cache_peak_entries\":96"));
        assert!(json.contains("\"regions_touched_per_query\":9"));
        let zero = cache_stats_to_json(&CacheStats::default());
        assert!(zero.contains("\"regions_touched_per_query\":0"));
    }

    #[test]
    fn aod_program_json_covers_instructions() {
        use crate::aod_program::lower_batch;
        use crate::items::BatchedMove;
        let program = lower_batch(&[
            BatchedMove {
                atom: AtomId(0),
                from: na_arch::Site::new(0, 0),
                to: na_arch::Site::new(0, 2),
            },
            BatchedMove {
                atom: AtomId(1),
                from: na_arch::Site::new(2, 1),
                to: na_arch::Site::new(2, 3),
            },
        ]);
        let json = aod_program_to_json(&program);
        assert!(json.contains("\"op\":\"activate_row\""));
        assert!(json.contains("\"op\":\"translate\""));
        assert!(json.contains("\"op\":\"deactivate\""));
        assert_eq!(json.matches("\"atom\":").count(), 2);
    }

    #[test]
    fn csv_has_row_per_item() {
        let (schedule, _) = sample_schedule();
        let csv = to_csv(&schedule);
        assert_eq!(csv.lines().count(), schedule.len() + 1);
        assert!(csv.contains("rydberg"));
    }

    #[test]
    fn utilization_bounded() {
        let (schedule, _) = sample_schedule();
        let util = Utilization::of(&schedule);
        for i in 0..schedule.num_atoms {
            let f = util.fraction(AtomId(i));
            assert!((0.0..=1.0).contains(&f));
        }
        assert!(util.mean_fraction() > 0.0);
        assert!(util.mean_fraction() <= 1.0);
    }

    #[test]
    fn busiest_atom_exists() {
        let (schedule, _) = sample_schedule();
        let util = Utilization::of(&schedule);
        let (atom, f) = util.busiest().expect("non-empty");
        assert!(f > 0.0);
        assert!(atom.0 < schedule.num_atoms);
    }

    #[test]
    fn empty_schedule_zero_utilization() {
        let schedule = Schedule {
            items: vec![],
            makespan_us: 0.0,
            num_qubits: 2,
            num_atoms: 4,
        };
        let util = Utilization::of(&schedule);
        assert_eq!(util.mean_fraction(), 0.0);
    }

    #[test]
    fn json_object_builder_escapes_and_delimits() {
        let mut o = JsonObject::new();
        o.uint("count", 7)
            .num("ratio", 0.5)
            .num("bad", f64::NAN)
            .str("note", "a \"b\"\n")
            .raw("nested", "{\"x\":1}");
        assert_eq!(
            o.finish(),
            "{\"count\":7,\"ratio\":0.5,\"bad\":null,\
             \"note\":\"a \\\"b\\\"\\n\",\"nested\":{\"x\":1}}"
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
