//! Schedule export and utilization statistics.
//!
//! [`to_csv`] serializes a schedule as Gantt-style event rows for
//! external plotting; [`Utilization`] summarizes per-atom busy fractions
//! (the physical counterpart of the idle time entering Eq. (1)).

use std::fmt::Write as _;

use na_mapper::AtomId;
use serde::{Deserialize, Serialize};

use crate::items::{Schedule, ScheduledItem};

/// Serializes the schedule as CSV with one row per scheduled item:
/// `kind,start_us,duration_us,atoms,detail`.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::Circuit;
/// use na_schedule::{export::to_csv, Scheduler};
/// let params = HardwareParams::mixed()
///     .to_builder().lattice(4, 3.0).num_atoms(8).build()?;
/// let mut c = Circuit::new(2);
/// c.h(0).cz(0, 1);
/// let csv = to_csv(&Scheduler::new(params).schedule_original(&c));
/// assert!(csv.starts_with("kind,start_us,duration_us,atoms,detail"));
/// assert_eq!(csv.lines().count(), 3); // header + 2 items
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_csv(schedule: &Schedule) -> String {
    let mut out = String::from("kind,start_us,duration_us,atoms,detail\n");
    for item in &schedule.items {
        let atoms = item
            .atoms()
            .iter()
            .map(|a| a.0.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let (kind, detail) = match item {
            ScheduledItem::SingleQubit { op_index, .. } => {
                ("single", op_index.map_or(String::new(), |i| i.to_string()))
            }
            ScheduledItem::Rydberg {
                op_index, atoms, ..
            } => (
                "rydberg",
                format!(
                    "arity={}{}",
                    atoms.len(),
                    op_index.map_or(String::new(), |i| format!(" op={i}"))
                ),
            ),
            ScheduledItem::SwapComposite { .. } => ("swap", String::new()),
            ScheduledItem::AodBatch { moves, .. } => ("aod", format!("moves={}", moves.len())),
        };
        let _ = writeln!(
            out,
            "{kind},{:.3},{:.3},{atoms},{detail}",
            item.start_us(),
            item.duration_us()
        );
    }
    out
}

/// Per-atom utilization of a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// Makespan in µs.
    pub makespan_us: f64,
    /// Busy time per atom in µs, indexed by atom id.
    pub busy_us: Vec<f64>,
}

impl Utilization {
    /// Computes per-atom busy times from a schedule.
    pub fn of(schedule: &Schedule) -> Self {
        let mut busy = vec![0.0f64; schedule.num_atoms as usize];
        for item in &schedule.items {
            for atom in item.atoms() {
                busy[atom.index()] += item.duration_us();
            }
        }
        Utilization {
            makespan_us: schedule.makespan_us,
            busy_us: busy,
        }
    }

    /// Busy fraction of one atom in `[0, 1]`.
    pub fn fraction(&self, atom: AtomId) -> f64 {
        if self.makespan_us > 0.0 {
            (self.busy_us[atom.index()] / self.makespan_us).min(1.0)
        } else {
            0.0
        }
    }

    /// Mean busy fraction over all atoms.
    pub fn mean_fraction(&self) -> f64 {
        if self.busy_us.is_empty() || self.makespan_us <= 0.0 {
            return 0.0;
        }
        self.busy_us.iter().sum::<f64>() / (self.busy_us.len() as f64 * self.makespan_us)
    }

    /// The busiest atom and its fraction.
    pub fn busiest(&self) -> Option<(AtomId, f64)> {
        self.busy_us
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| {
                let atom = AtomId(i as u32);
                (atom, self.fraction(atom))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Scheduler;
    use na_arch::HardwareParams;
    use na_circuit::generators::GraphState;
    use na_mapper::{HybridMapper, MapperConfig};

    fn sample_schedule() -> (Schedule, HardwareParams) {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(5, 3.0)
            .num_atoms(14)
            .build()
            .expect("valid");
        let circuit = GraphState::new(12).edges(16).seed(4).build();
        let mapped = HybridMapper::new(params.clone(), MapperConfig::hybrid(1.0))
            .expect("valid")
            .map(&circuit)
            .expect("mappable")
            .mapped;
        (
            Scheduler::new(params.clone()).schedule_mapped(&mapped),
            params,
        )
    }

    #[test]
    fn csv_has_row_per_item() {
        let (schedule, _) = sample_schedule();
        let csv = to_csv(&schedule);
        assert_eq!(csv.lines().count(), schedule.len() + 1);
        assert!(csv.contains("rydberg"));
    }

    #[test]
    fn utilization_bounded() {
        let (schedule, _) = sample_schedule();
        let util = Utilization::of(&schedule);
        for i in 0..schedule.num_atoms {
            let f = util.fraction(AtomId(i));
            assert!((0.0..=1.0).contains(&f));
        }
        assert!(util.mean_fraction() > 0.0);
        assert!(util.mean_fraction() <= 1.0);
    }

    #[test]
    fn busiest_atom_exists() {
        let (schedule, _) = sample_schedule();
        let util = Utilization::of(&schedule);
        let (atom, f) = util.busiest().expect("non-empty");
        assert!(f > 0.0);
        assert!(atom.0 < schedule.num_atoms);
    }

    #[test]
    fn empty_schedule_zero_utilization() {
        let schedule = Schedule {
            items: vec![],
            makespan_us: 0.0,
            num_qubits: 2,
            num_atoms: 4,
        };
        let util = Utilization::of(&schedule);
        assert_eq!(util.mean_fraction(), 0.0);
    }
}
