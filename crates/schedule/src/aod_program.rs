//! Lowering AOD batches to native AOD instructions.
//!
//! The paper's processing step (5) converts shuttling operations "to
//! native AOD operations, entailing AOD activation, deactivation, and
//! movements of the AOD coordinates" under the protocol of Example 2:
//!
//! 1. atoms are loaded *sequentially by row*, each loading step followed
//!    by a small **offset move** so the ghost spots (empty AOD
//!    intersections, which also act as traps) sit in the empty
//!    inter-site regions and never hover over stored atoms,
//! 2. rows and columns then **translate** to their target coordinates —
//!    each line independently, but order-preserving (no crossings),
//! 3. a final reverse offset aligns the grid with the target sites and
//!    the AOD **deactivates**, storing the atoms in static traps.
//!
//! [`lower_batch`] produces this instruction stream for one scheduled
//! [`AOD batch`](crate::items::ScheduledItem::AodBatch);
//! [`validate_program`] replays it against an occupancy snapshot and
//! checks every constraint (line ordering, ghost-spot clearance, target
//! consistency).

use na_arch::{Lattice, Site};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::items::BatchedMove;

/// Ghost-spot avoidance offset in lattice units (strictly between 0 and
/// 0.5 so offset grid points always fall in inter-site regions).
pub const LOAD_OFFSET: f64 = 0.25;

/// One native AOD instruction. Coordinates are in lattice units; the
/// physical deflector frequency is proportional to the coordinate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AodInstruction {
    /// Activates one AOD row (at `row`) together with the columns at
    /// `cols`, trapping the atoms stored at those intersections.
    ActivateRow {
        /// The row coordinate (y).
        row: f64,
        /// Column coordinates (x) activated for this row, ascending.
        cols: Vec<f64>,
    },
    /// Rigid offset of the whole active grid (ghost-spot avoidance).
    Offset {
        /// x displacement.
        dx: f64,
        /// y displacement.
        dy: f64,
    },
    /// Independent translation of every active row and column to its
    /// target coordinate (order-preserving).
    Translate {
        /// `(from, to)` per active row, ascending by `from`.
        rows: Vec<(f64, f64)>,
        /// `(from, to)` per active column, ascending by `from`.
        cols: Vec<(f64, f64)>,
    },
    /// Deactivates the whole grid, storing all trapped atoms at the
    /// static sites under their current coordinates.
    Deactivate,
}

/// A lowered AOD transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AodProgram {
    /// The instruction stream in execution order.
    pub instructions: Vec<AodInstruction>,
    /// The moves this program realizes.
    pub moves: Vec<BatchedMove>,
}

impl AodProgram {
    /// Number of loading steps (row activations).
    pub fn load_steps(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, AodInstruction::ActivateRow { .. }))
            .count()
    }
}

/// Errors detected while validating an AOD program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AodProgramError {
    /// A ghost spot (or activated intersection) coincided with a stored
    /// atom that is not part of the batch.
    GhostSpotCollision {
        /// The static site underneath.
        site: Site,
    },
    /// Row or column order would invert during the translate phase.
    LineCrossing,
    /// An atom did not end at its declared target.
    WrongTarget {
        /// The expected target.
        expected: Site,
    },
    /// The program shape is invalid (e.g. translate before any load).
    Malformed(String),
}

impl std::fmt::Display for AodProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AodProgramError::GhostSpotCollision { site } => {
                write!(f, "ghost spot hovers over stored atom at {site}")
            }
            AodProgramError::LineCrossing => write!(f, "AOD lines would cross"),
            AodProgramError::WrongTarget { expected } => {
                write!(f, "atom missed its target {expected}")
            }
            AodProgramError::Malformed(why) => write!(f, "malformed program: {why}"),
        }
    }
}

impl std::error::Error for AodProgramError {}

/// Lowers one batch of compatible moves to the Example 2 instruction
/// stream: per-row sequential loading with offsets, one translate phase,
/// final deactivation.
///
/// # Panics
///
/// Panics if the batch is empty or moves are not pairwise compatible
/// (the scheduler guarantees both).
pub fn lower_batch(moves: &[BatchedMove]) -> AodProgram {
    assert!(!moves.is_empty(), "cannot lower an empty batch");

    // Line maps: every source row y maps to a unique target row, ditto
    // for columns (guaranteed by batch compatibility).
    let mut row_map: BTreeMap<i32, i32> = BTreeMap::new();
    let mut col_map: BTreeMap<i32, i32> = BTreeMap::new();
    for m in moves {
        row_map.insert(m.from.y, m.to.y);
        col_map.insert(m.from.x, m.to.x);
    }

    let mut instructions = Vec::new();
    // Sequential loading, one row per step, columns of that row's moves.
    // After each activation, the offset parks the freshly created grid
    // line between lattice sites.
    let mut rows_loaded = 0usize;
    for &row in row_map.keys() {
        let mut cols: Vec<f64> = moves
            .iter()
            .filter(|m| m.from.y == row)
            .map(|m| f64::from(m.from.x))
            .collect();
        cols.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        cols.dedup();
        // Earlier-loaded rows sit at +LOAD_OFFSET; activate this row on
        // the unshifted lattice coordinates.
        instructions.push(AodInstruction::ActivateRow {
            row: f64::from(row),
            cols,
        });
        rows_loaded += 1;
        if rows_loaded < row_map.len() {
            instructions.push(AodInstruction::Offset {
                dx: LOAD_OFFSET,
                dy: LOAD_OFFSET,
            });
        }
    }
    // Undo accumulated offsets so the translate starts grid-aligned:
    // every row i was offset (rows_loaded - 1 - i) times, but since the
    // offset moves the *whole* active grid, the net effect on the grid is
    // (rows_loaded - 1) offsets for the first row... To keep the model
    // tractable we treat Offset as rigid on the active grid and emit one
    // compensating offset before the translate.
    if rows_loaded > 1 {
        instructions.push(AodInstruction::Offset {
            dx: -LOAD_OFFSET,
            dy: -LOAD_OFFSET,
        });
    }
    instructions.push(AodInstruction::Translate {
        rows: row_map
            .iter()
            .map(|(&f, &t)| (f64::from(f), f64::from(t)))
            .collect(),
        cols: col_map
            .iter()
            .map(|(&f, &t)| (f64::from(f), f64::from(t)))
            .collect(),
    });
    instructions.push(AodInstruction::Deactivate);

    AodProgram {
        instructions,
        moves: moves.to_vec(),
    }
}

/// Validates a lowered program against the occupancy of the lattice just
/// before the batch executes.
///
/// `occupied` must list every stored atom's site (including the batch's
/// own sources).
///
/// # Errors
///
/// Returns the first violated constraint.
pub fn validate_program(
    program: &AodProgram,
    lattice: &Lattice,
    occupied: &[Site],
) -> Result<(), AodProgramError> {
    validate_program_with(program, lattice, |site| occupied.contains(&site))
}

/// [`validate_program`] with occupancy supplied as a predicate instead of
/// a materialized site list.
///
/// Callers that already maintain occupancy in an indexed structure (the
/// scheduler's per-site free times, the pipeline's replay bitmap) pass an
/// O(1) lookup here instead of collecting — and linearly re-scanning —
/// every stored atom per ghost-spot probe. The predicate may be queried
/// for any lattice site; sites outside the lattice are never queried.
///
/// # Errors
///
/// Returns the first violated constraint.
pub fn validate_program_with(
    program: &AodProgram,
    lattice: &Lattice,
    occupied: impl Fn(Site) -> bool,
) -> Result<(), AodProgramError> {
    // Static atoms not participating in the batch: occupied sites that
    // are not batch sources.
    let sources: Vec<Site> = program.moves.iter().map(|m| m.from).collect();
    let is_spectator = |site: Site| occupied(site) && !sources.contains(&site);

    let mut active_rows: Vec<f64> = Vec::new();
    let mut active_cols: Vec<f64> = Vec::new();
    let mut translated = false;

    for instr in &program.instructions {
        match instr {
            AodInstruction::ActivateRow { row, cols } => {
                if translated {
                    return Err(AodProgramError::Malformed(
                        "activation after translate".into(),
                    ));
                }
                active_rows.push(*row);
                active_cols.extend(cols.iter().copied());
                active_cols.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                active_cols.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
                check_ghost_spots(&active_rows, &active_cols, lattice, &is_spectator)?;
            }
            AodInstruction::Offset { dx, dy } => {
                for r in &mut active_rows {
                    *r += dy;
                }
                for c in &mut active_cols {
                    *c += dx;
                }
                check_ghost_spots(&active_rows, &active_cols, lattice, &is_spectator)?;
            }
            AodInstruction::Translate { rows, cols } => {
                // Order preservation: targets sorted iff sources sorted.
                for pairs in [rows, cols] {
                    for w in pairs.windows(2) {
                        if w[0].0 >= w[1].0 || w[0].1 >= w[1].1 {
                            return Err(AodProgramError::LineCrossing);
                        }
                    }
                }
                active_rows = rows.iter().map(|&(_, t)| t).collect();
                active_cols = cols.iter().map(|&(_, t)| t).collect();
                translated = true;
            }
            AodInstruction::Deactivate => {
                check_ghost_spots(&active_rows, &active_cols, lattice, &is_spectator)?;
            }
        }
    }

    if !translated {
        return Err(AodProgramError::Malformed("no translate phase".into()));
    }
    // Every move's target must be expressible by the final line
    // positions.
    for m in &program.moves {
        let row_ok = active_rows
            .iter()
            .any(|&r| (r - f64::from(m.to.y)).abs() < 1e-9);
        let col_ok = active_cols
            .iter()
            .any(|&c| (c - f64::from(m.to.x)).abs() < 1e-9);
        if !row_ok || !col_ok {
            return Err(AodProgramError::WrongTarget { expected: m.to });
        }
    }
    Ok(())
}

/// A grid intersection exactly on a lattice site holding a spectator atom
/// is a ghost-spot collision (intersections holding batch atoms are the
/// intended traps).
fn check_ghost_spots(
    rows: &[f64],
    cols: &[f64],
    lattice: &Lattice,
    is_spectator: &impl Fn(Site) -> bool,
) -> Result<(), AodProgramError> {
    for &r in rows {
        for &c in cols {
            let on_lattice = (r - r.round()).abs() < 1e-9 && (c - c.round()).abs() < 1e-9;
            if !on_lattice {
                continue;
            }
            let site = Site::new(c.round() as i32, r.round() as i32);
            if lattice.contains(site) && is_spectator(site) {
                return Err(AodProgramError::GhostSpotCollision { site });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_mapper::AtomId;

    fn mv(atom: u32, fx: i32, fy: i32, tx: i32, ty: i32) -> BatchedMove {
        BatchedMove {
            atom: AtomId(atom),
            from: Site::new(fx, fy),
            to: Site::new(tx, ty),
        }
    }

    #[test]
    fn single_move_program_shape() {
        let program = lower_batch(&[mv(0, 1, 2, 4, 2)]);
        assert_eq!(program.load_steps(), 1);
        assert!(matches!(
            program.instructions.last(),
            Some(AodInstruction::Deactivate)
        ));
        let lattice = Lattice::new(6);
        validate_program(&program, &lattice, &[Site::new(1, 2)]).unwrap();
    }

    /// Example 2 of the paper: q0 loads alone; q3 and q4 share a row and
    /// load together; all three then translate to their targets
    /// (order-consistent variant of the figure's geometry).
    #[test]
    fn example2_lowering() {
        let moves = [mv(0, 2, 0, 2, 1), mv(3, 0, 3, 0, 4), mv(4, 4, 3, 4, 4)];
        let program = lower_batch(&moves);
        // Two distinct source rows -> two load steps (q3, q4 together).
        assert_eq!(program.load_steps(), 2);
        let lattice = Lattice::new(6);
        let occupied = vec![Site::new(2, 0), Site::new(0, 3), Site::new(4, 3)];
        validate_program(&program, &lattice, &occupied).unwrap();
    }

    #[test]
    fn ghost_spot_collision_detected() {
        // Two moves whose activated grid has an intersection over a
        // spectator atom at (0, 0) with no offset applied in between
        // (simulate by handcrafting a bad program).
        let moves = [mv(0, 0, 1, 0, 4), mv(1, 3, 0, 3, 3)];
        let bad = AodProgram {
            instructions: vec![
                AodInstruction::ActivateRow {
                    row: 0.0,
                    cols: vec![3.0],
                },
                // Activating row 1 with column 0 adds intersection (0, 0)
                // which holds a spectator — and (3, 1), (0, 1).
                AodInstruction::ActivateRow {
                    row: 1.0,
                    cols: vec![0.0],
                },
                AodInstruction::Translate {
                    rows: vec![(0.0, 3.0), (1.0, 4.0)],
                    cols: vec![(0.0, 0.0), (3.0, 3.0)],
                },
                AodInstruction::Deactivate,
            ],
            moves: moves.to_vec(),
        };
        let lattice = Lattice::new(6);
        let occupied = vec![
            Site::new(0, 1),
            Site::new(3, 0),
            Site::new(0, 0), // spectator under the (0,0) intersection
        ];
        assert_eq!(
            validate_program(&bad, &lattice, &occupied),
            Err(AodProgramError::GhostSpotCollision {
                site: Site::new(0, 0)
            })
        );
    }

    #[test]
    fn offsets_clear_ghost_spots() {
        // Same geometry as above, but lowered properly with offsets: the
        // sequential protocol keeps intersections off the spectator.
        let moves = [mv(0, 0, 1, 0, 4), mv(1, 3, 0, 3, 3)];
        let program = lower_batch(&moves);
        let lattice = Lattice::new(6);
        let occupied = vec![Site::new(0, 1), Site::new(3, 0), Site::new(0, 0)];
        // The lowered program loads row 0 (col 3) first, offsets, then
        // row 1 (col 0): at that moment the intersections are
        // {0,3}x{0.25+0,1} — (0.25, ...) never on-lattice, and (0, 1),
        // (3, 1)... wait row 0 is offset to 0.25, row 1 activates at 1.0:
        // intersections (0,1), (3,1): (0,1) is the batch's own source? No
        // — (0,1) IS move 0's source, an intended trap, not a ghost spot.
        match validate_program(&program, &lattice, &occupied) {
            Ok(()) => {}
            Err(AodProgramError::GhostSpotCollision { site }) => {
                // (3, 1) holds nothing in `occupied`, (0, 0) is only hit
                // without offsets; any collision here is a real bug.
                panic!("unexpected ghost collision at {site}");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn crossing_translate_rejected() {
        let moves = [mv(0, 0, 0, 3, 0), mv(1, 2, 2, 1, 2)];
        let mut program = lower_batch(&moves);
        // Corrupt the translate phase to cross columns.
        for instr in &mut program.instructions {
            if let AodInstruction::Translate { cols, .. } = instr {
                *cols = vec![(0.0, 3.0), (2.0, 1.0)];
            }
        }
        let lattice = Lattice::new(6);
        assert_eq!(
            validate_program(&program, &lattice, &[Site::new(0, 0), Site::new(2, 2)]),
            Err(AodProgramError::LineCrossing)
        );
    }

    #[test]
    fn shared_row_loads_once() {
        let moves = [mv(0, 0, 2, 0, 5), mv(1, 3, 2, 3, 5)];
        let program = lower_batch(&moves);
        assert_eq!(program.load_steps(), 1);
        if let AodInstruction::ActivateRow { cols, .. } = &program.instructions[0] {
            assert_eq!(cols.len(), 2);
        } else {
            panic!("first instruction must activate the shared row");
        }
    }

    /// Every AOD batch produced by a real shuttling-only mapping run
    /// lowers to a valid instruction stream against the true occupancy.
    #[test]
    fn real_mapping_batches_lower_and_validate() {
        use crate::items::ScheduledItem;
        use crate::scheduler::Scheduler;
        use na_arch::HardwareParams;
        use na_circuit::generators::GraphState;
        use na_mapper::{HybridMapper, MapperConfig, MappingState};

        let params = HardwareParams::shuttling()
            .to_builder()
            .lattice(7, 3.0)
            .num_atoms(30)
            .build()
            .expect("valid");
        let circuit = GraphState::new(24).edges(40).seed(6).build();
        let outcome = HybridMapper::new(params.clone(), MapperConfig::shuttle_only())
            .expect("valid")
            .map(&circuit)
            .expect("mappable");
        let schedule = Scheduler::new(params.clone()).schedule_mapped(&outcome.mapped);
        let lattice = Lattice::new(params.lattice_side);

        // Occupancy only changes through AOD batches; replay them in
        // schedule order (the batch aggregation preserves all
        // vacate-before-fill dependencies, which this replay re-checks
        // via MappingState's occupancy assertions).
        let state = MappingState::identity(&params, circuit.num_qubits()).expect("fits");
        let mut site_of_atom: Vec<Site> = (0..params.num_atoms)
            .map(|a| state.site_of_atom(AtomId(a)))
            .collect();
        let mut batches_checked = 0;
        for item in &schedule.items {
            if let ScheduledItem::AodBatch { moves, .. } = item {
                let occupied: Vec<Site> = site_of_atom.clone();
                let program = lower_batch(moves);
                validate_program(&program, &lattice, &occupied)
                    .unwrap_or_else(|e| panic!("batch {batches_checked}: {e}"));
                for m in moves {
                    assert_eq!(
                        site_of_atom[m.atom.index()],
                        m.from,
                        "batch {batches_checked}: stale source for {:?}",
                        m.atom
                    );
                    assert!(
                        !site_of_atom.contains(&m.to),
                        "batch {batches_checked}: target {} still occupied",
                        m.to
                    );
                    site_of_atom[m.atom.index()] = m.to;
                }
                batches_checked += 1;
            }
        }
        assert!(batches_checked > 0, "mapping must have produced batches");
    }

    #[test]
    fn wrong_target_detected() {
        let moves = [mv(0, 1, 1, 4, 4)];
        let mut program = lower_batch(&moves);
        for instr in &mut program.instructions {
            if let AodInstruction::Translate { rows, .. } = instr {
                *rows = vec![(1.0, 3.0)]; // should be 4
            }
        }
        let lattice = Lattice::new(6);
        assert_eq!(
            validate_program(&program, &lattice, &[Site::new(1, 1)]),
            Err(AodProgramError::WrongTarget {
                expected: Site::new(4, 4)
            })
        );
    }
}
