//! ASAP scheduling with restriction constraints and AOD batching.

use na_arch::{aod, geometry, HardwareParams, Move, Site};
use na_circuit::{decompose_to_native, Circuit};
use na_mapper::{AtomId, MappedCircuit, MappedOp};

use crate::items::{BatchedMove, Schedule, ScheduledItem};
use crate::metrics::{ComparisonReport, ScheduleMetrics};

/// Schedules mapped circuits and original (unrouted) circuits under the
/// hardware timing model.
///
/// Scheduling is as-soon-as-possible in stream order with two NA-specific
/// rules (paper §2.1, §3.2 (5)):
///
/// * two Rydberg operations may overlap in time only if every pair of
///   atoms from different gates keeps at least `r_restr` distance,
/// * consecutive shuttle moves merge into one AOD transaction when their
///   row/column orders are consistent (no crossing) and no move targets a
///   site another batched move is still vacating.
#[derive(Debug, Clone)]
pub struct Scheduler {
    params: HardwareParams,
}

impl Scheduler {
    /// Creates a scheduler for the given hardware.
    pub fn new(params: HardwareParams) -> Self {
        Scheduler { params }
    }

    /// The hardware parameters.
    pub fn params(&self) -> &HardwareParams {
        &self.params
    }

    /// Schedules a mapped operation stream.
    ///
    /// Runs of consecutive shuttle moves (no gate in between) are
    /// repartitioned into as few AOD transactions as the constraints
    /// allow: a move may join any open batch of its run that is
    /// AOD-compatible, provided every earlier move it conflicts with
    /// (vacate-before-fill on a shared site, or the same atom moving
    /// twice) sits in a strictly earlier batch. This mirrors the paper's
    /// aggressive parallel scheduling of independent rearrangements.
    pub fn schedule_mapped(&self, mapped: &MappedCircuit) -> Schedule {
        let mut builder = ScheduleBuilder::new(&self.params, mapped.num_atoms, mapped.layout);
        let mut run = BatchRun::new();

        for op in mapped.iter() {
            match op {
                MappedOp::Shuttle { atom, from, to } => {
                    run.push(BatchedMove {
                        atom: *atom,
                        from: *from,
                        to: *to,
                    });
                }
                _ => {
                    run.flush_into(&mut builder);
                    match op {
                        MappedOp::Gate {
                            op_index,
                            op,
                            atoms,
                            sites,
                        } => {
                            if op.arity() == 1 {
                                builder.push_single(
                                    atoms[0],
                                    sites[0],
                                    self.params.t_single_us,
                                    Some(*op_index),
                                );
                            } else {
                                builder.push_rydberg(
                                    atoms.clone(),
                                    sites.clone(),
                                    self.params.cz_family_time_us(op.arity()),
                                    Some(*op_index),
                                );
                            }
                        }
                        MappedOp::Swap {
                            a,
                            b,
                            site_a,
                            site_b,
                        } => {
                            builder.push_swap([*a, *b], [*site_a, *site_b]);
                        }
                        // `MappedOp` is non-exhaustive; shuttles are
                        // handled in the outer match.
                        other => unreachable!("unhandled mapped op {other:?}"),
                    }
                }
            }
        }
        run.flush_into(&mut builder);
        builder.finish(mapped.num_qubits)
    }

    /// Schedules the *original* circuit assuming ideal all-to-all
    /// connectivity (no routing, no restriction): the baseline of the
    /// paper's `Δ` metrics. Non-native gates are decomposed first and
    /// operations are ordered by the commutation-aware DAG so the
    /// baseline enjoys the same reordering freedom as the mapped stream.
    pub fn schedule_original(&self, circuit: &Circuit) -> Schedule {
        let native = if circuit.is_native() {
            circuit.clone()
        } else {
            decompose_to_native(circuit)
        };
        let order = na_circuit::CircuitDag::new(&native).topological_order();
        let n = native.num_qubits() as usize;
        let mut avail = vec![0.0f64; n];
        let mut items = Vec::with_capacity(native.len());
        let mut makespan = 0.0f64;
        for i in order {
            let op = &native.ops()[i];
            let start = op
                .qubits()
                .iter()
                .map(|q| avail[q.index()])
                .fold(0.0, f64::max);
            let dur = op.duration_us(&self.params);
            for q in op.qubits() {
                avail[q.index()] = start + dur;
            }
            makespan = makespan.max(start + dur);
            // Atom/site identifiers mirror the identity layout.
            let atoms: Vec<AtomId> = op.qubits().iter().map(|q| AtomId(q.0)).collect();
            let sites: Vec<Site> = atoms
                .iter()
                .map(|a| {
                    let side = self.params.lattice_side as i32;
                    Site::new(a.0 as i32 % side, a.0 as i32 / side)
                })
                .collect();
            if op.arity() == 1 {
                items.push(ScheduledItem::SingleQubit {
                    atom: atoms[0],
                    site: sites[0],
                    start_us: start,
                    duration_us: dur,
                    op_index: Some(i),
                });
            } else {
                items.push(ScheduledItem::Rydberg {
                    atoms,
                    sites,
                    start_us: start,
                    duration_us: dur,
                    op_index: Some(i),
                });
            }
        }
        Schedule {
            items,
            makespan_us: makespan,
            num_qubits: native.num_qubits(),
            num_atoms: self.params.num_atoms,
        }
    }

    /// Convenience: schedules both versions and produces the Table 1a
    /// comparison (`ΔCZ`, `ΔT`, `δF`).
    pub fn compare(&self, circuit: &Circuit, mapped: &MappedCircuit) -> ComparisonReport {
        let original = ScheduleMetrics::of(&self.schedule_original(circuit), &self.params);
        let routed = ScheduleMetrics::of(&self.schedule_mapped(mapped), &self.params);
        ComparisonReport::between(&original, &routed)
    }
}

/// Returns `true` if `mv` can join the pending batch: AOD-compatible with
/// every member and not touching a site another member vacates or fills.
fn batch_accepts(batch: &[BatchedMove], mv: &BatchedMove) -> bool {
    batch.iter().all(|b| {
        aod::moves_fully_parallel(&Move::new(b.from, b.to), &Move::new(mv.from, mv.to))
            && b.to != mv.from
            && b.from != mv.to
    })
}

/// Open batches of the current shuttle run: moves are placed into the
/// earliest batch their dependencies and the AOD constraints permit.
#[derive(Debug, Default)]
struct BatchRun {
    batches: Vec<Vec<BatchedMove>>,
}

impl BatchRun {
    fn new() -> Self {
        BatchRun::default()
    }

    fn push(&mut self, mv: BatchedMove) {
        // Moves conflicting with `mv` force it into a strictly later
        // batch: vacate-before-fill on shared sites, or the same atom
        // shuttling twice.
        let mut earliest = 0usize;
        for (bi, batch) in self.batches.iter().enumerate() {
            let conflicts = batch
                .iter()
                .any(|b| b.to == mv.from || b.from == mv.to || b.atom == mv.atom);
            if conflicts {
                earliest = bi + 1;
            }
        }
        for batch in self.batches.iter_mut().skip(earliest) {
            if batch_accepts(batch, &mv) {
                batch.push(mv);
                return;
            }
        }
        self.batches.push(vec![mv]);
    }

    fn flush_into(&mut self, builder: &mut ScheduleBuilder<'_>) {
        for mut batch in self.batches.drain(..) {
            builder.flush_batch(&mut batch);
        }
    }
}

struct ScheduleBuilder<'p> {
    params: &'p HardwareParams,
    avail: Vec<f64>,
    /// Per trap site: the time from which the site is free (∞ while
    /// occupied). Starts from the identity layout.
    site_free_at: Vec<f64>,
    lattice: na_arch::Lattice,
    /// Rydberg intervals still relevant for restriction checks.
    active_rydberg: Vec<(f64, f64, Vec<Site>)>,
    items: Vec<ScheduledItem>,
    makespan: f64,
}

impl<'p> ScheduleBuilder<'p> {
    fn new(params: &'p HardwareParams, num_atoms: u32, layout: na_mapper::InitialLayout) -> Self {
        let lattice = na_arch::Lattice::new(params.lattice_side);
        let mut site_free_at = vec![0.0; lattice.num_sites()];
        for site in layout.place(&lattice, num_atoms) {
            site_free_at[lattice.index(site)] = f64::INFINITY;
        }
        ScheduleBuilder {
            params,
            avail: vec![0.0; num_atoms as usize],
            site_free_at,
            lattice,
            active_rydberg: Vec::new(),
            items: Vec::new(),
            makespan: 0.0,
        }
    }

    fn earliest(&self, atoms: &[AtomId]) -> f64 {
        atoms
            .iter()
            .map(|a| self.avail[a.index()])
            .fold(0.0, f64::max)
    }

    fn occupy(&mut self, atoms: &[AtomId], start: f64, dur: f64) {
        for a in atoms {
            self.avail[a.index()] = start + dur;
        }
        self.makespan = self.makespan.max(start + dur);
    }

    /// Delays `t0` until no active Rydberg interval within `r_restr`
    /// overlaps `[t0, t0 + dur)`.
    fn respect_restriction(&mut self, sites: &[Site], mut t0: f64, dur: f64) -> f64 {
        let r = self.params.r_restr;
        // Prune intervals that ended before any possible overlap.
        self.active_rydberg.retain(|(_, end, _)| *end > t0);
        loop {
            let mut moved = false;
            for (start, end, other) in &self.active_rydberg {
                let overlaps = *start < t0 + dur && *end > t0;
                if overlaps && !geometry::sets_clear_of(sites, other, r) {
                    t0 = *end;
                    moved = true;
                }
            }
            if !moved {
                return t0;
            }
        }
    }

    fn push_single(&mut self, atom: AtomId, site: Site, dur: f64, op_index: Option<usize>) {
        let start = self.earliest(&[atom]);
        self.occupy(&[atom], start, dur);
        self.items.push(ScheduledItem::SingleQubit {
            atom,
            site,
            start_us: start,
            duration_us: dur,
            op_index,
        });
    }

    fn push_rydberg(
        &mut self,
        atoms: Vec<AtomId>,
        sites: Vec<Site>,
        dur: f64,
        op_index: Option<usize>,
    ) {
        let t0 = self.earliest(&atoms);
        let start = self.respect_restriction(&sites, t0, dur);
        self.occupy(&atoms, start, dur);
        self.active_rydberg
            .push((start, start + dur, sites.clone()));
        self.items.push(ScheduledItem::Rydberg {
            atoms,
            sites,
            start_us: start,
            duration_us: dur,
            op_index,
        });
    }

    fn push_swap(&mut self, atoms: [AtomId; 2], sites: [Site; 2]) {
        let dur = self.params.swap_time_us();
        let t0 = self.earliest(&atoms);
        let start = self.respect_restriction(&sites, t0, dur);
        self.occupy(&atoms, start, dur);
        self.active_rydberg
            .push((start, start + dur, sites.to_vec()));
        self.items.push(ScheduledItem::SwapComposite {
            atoms,
            sites,
            start_us: start,
            duration_us: dur,
        });
    }

    fn flush_batch(&mut self, batch: &mut Vec<BatchedMove>) {
        if batch.is_empty() {
            return;
        }
        let moves = std::mem::take(batch);
        let atoms: Vec<AtomId> = moves.iter().map(|m| m.atom).collect();
        // Besides atom availability, every target site must have been
        // vacated (chains move a blocker away before reusing its trap).
        let start = moves
            .iter()
            .map(|m| self.site_free_at[self.lattice.index(m.to)])
            .fold(self.earliest(&atoms), f64::max);
        debug_assert!(start.is_finite(), "move into a never-vacated site");
        let max_dist = moves
            .iter()
            .map(|m| m.from.rectilinear_distance(m.to))
            .fold(0.0, f64::max);
        let dur = self.params.shuttle_time_us(max_dist);
        self.occupy(&atoms, start, dur);
        for m in &moves {
            self.site_free_at[self.lattice.index(m.from)] = start + dur;
            self.site_free_at[self.lattice.index(m.to)] = f64::INFINITY;
        }
        self.items.push(ScheduledItem::AodBatch {
            moves,
            start_us: start,
            duration_us: dur,
        });
    }

    fn finish(self, num_qubits: u32) -> Schedule {
        Schedule {
            items: self.items,
            makespan_us: self.makespan,
            num_qubits,
            num_atoms: self.avail.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_circuit::generators::{GraphState, Qft};
    use na_mapper::{HybridMapper, MapperConfig};

    fn params(preset: HardwareParams, side: u32, atoms: u32) -> HardwareParams {
        preset
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .build()
            .expect("valid")
    }

    fn map_with(p: &HardwareParams, cfg: MapperConfig, circuit: &Circuit) -> MappedCircuit {
        HybridMapper::new(p.clone(), cfg)
            .expect("valid")
            .map(circuit)
            .expect("mappable")
            .mapped
    }

    #[test]
    fn original_schedule_respects_dependencies() {
        let p = params(HardwareParams::mixed(), 5, 12);
        let s = Scheduler::new(p);
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).h(1);
        let schedule = s.schedule_original(&c);
        assert_eq!(schedule.len(), 3);
        // h(0) at 0, cz after it, h(1) after cz.
        assert_eq!(schedule.items[0].start_us(), 0.0);
        assert!(schedule.items[1].start_us() >= 0.5);
        assert!(schedule.items[2].start_us() >= schedule.items[1].end_us() - 1e-9);
        assert!((schedule.makespan_us - (0.5 + 0.2 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn parallel_gates_overlap_in_original() {
        let p = params(HardwareParams::mixed(), 5, 12);
        let s = Scheduler::new(p);
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3);
        let schedule = s.schedule_original(&c);
        assert_eq!(schedule.items[0].start_us(), 0.0);
        assert_eq!(schedule.items[1].start_us(), 0.0);
        assert!((schedule.makespan_us - 0.2).abs() < 1e-12);
    }

    #[test]
    fn restriction_serializes_nearby_rydberg_gates() {
        // Two CZ gates on disjoint atom pairs that sit within r_restr of
        // each other must not overlap in the mapped schedule.
        let p = params(HardwareParams::mixed(), 5, 12); // r_restr = 2.5
        let s = Scheduler::new(p.clone());
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3); // atoms at (0,0),(1,0),(2,0),(3,0): within 2.5
        let mapped = map_with(&p, MapperConfig::gate_only(), &c);
        let schedule = s.schedule_mapped(&mapped);
        let rydberg: Vec<_> = schedule.items.iter().filter(|i| i.is_rydberg()).collect();
        assert_eq!(rydberg.len(), 2);
        let (a, b) = (&rydberg[0], &rydberg[1]);
        let disjoint_in_time =
            a.end_us() <= b.start_us() + 1e-9 || b.end_us() <= a.start_us() + 1e-9;
        assert!(disjoint_in_time, "restricted gates must serialize");
    }

    #[test]
    fn distant_rydberg_gates_parallelize() {
        let p = params(HardwareParams::mixed(), 8, 40); // r_restr = 2.5
        let s = Scheduler::new(p.clone());
        let mut c = Circuit::new(40);
        // Atoms (0,0),(1,0) and (0,4),(1,4): distance 4 > 2.5.
        c.cz(0, 1).cz(32, 33);
        let mapped = map_with(&p, MapperConfig::gate_only(), &c);
        let schedule = s.schedule_mapped(&mapped);
        let rydberg: Vec<_> = schedule.items.iter().filter(|i| i.is_rydberg()).collect();
        assert_eq!(rydberg.len(), 2);
        assert_eq!(rydberg[0].start_us(), rydberg[1].start_us());
    }

    #[test]
    fn compatible_moves_batch_together() {
        let p = params(HardwareParams::shuttling(), 6, 12);
        let s = Scheduler::new(p.clone());
        let qft = Qft::new(10).build();
        let mapped = map_with(&p, MapperConfig::shuttle_only(), &qft);
        let schedule = s.schedule_mapped(&mapped);
        assert_eq!(schedule.move_count(), mapped.shuttle_count());
        // Batching never increases the transaction count.
        assert!(schedule.batch_count() <= schedule.move_count());
    }

    #[test]
    fn chain_dependent_moves_do_not_batch() {
        // A move-away followed by a move into the vacated site must be in
        // different AOD transactions.
        let p = params(HardwareParams::shuttling(), 4, 10);
        let s = Scheduler::new(p.clone());
        let mut mapped = MappedCircuit::new(2, 10);
        mapped.ops.push(MappedOp::Shuttle {
            atom: AtomId(5),
            from: Site::new(1, 1),
            to: Site::new(3, 3),
        });
        mapped.ops.push(MappedOp::Shuttle {
            atom: AtomId(0),
            from: Site::new(0, 0),
            to: Site::new(1, 1),
        });
        let schedule = s.schedule_mapped(&mapped);
        assert_eq!(schedule.batch_count(), 2);
        let ends: Vec<f64> = schedule.items.iter().map(|i| i.end_us()).collect();
        let starts: Vec<f64> = schedule.items.iter().map(|i| i.start_us()).collect();
        assert!(
            starts[1] >= ends[0] - 1e-9,
            "second batch waits for the first"
        );
    }

    #[test]
    fn mapped_makespan_at_least_original() {
        let p = params(HardwareParams::mixed(), 6, 25);
        let s = Scheduler::new(p.clone());
        let c = GraphState::new(20).edges(28).seed(2).build();
        let mapped = map_with(&p, MapperConfig::hybrid(1.0), &c);
        let t_orig = s.schedule_original(&c).makespan_us;
        let t_mapped = s.schedule_mapped(&mapped).makespan_us;
        assert!(t_mapped >= t_orig - 1e-6);
    }

    #[test]
    fn cz_accounting_matches_mapper() {
        let p = params(HardwareParams::gate_based(), 6, 25);
        let s = Scheduler::new(p.clone());
        let c = Qft::new(14).build();
        let mapped = map_with(&p, MapperConfig::gate_only(), &c);
        let schedule = s.schedule_mapped(&mapped);
        let original = s.schedule_original(&c);
        assert_eq!(schedule.cz_count() - original.cz_count(), mapped.delta_cz());
    }

    #[test]
    fn atoms_never_overlap_in_time() {
        let p = params(HardwareParams::mixed(), 6, 25);
        let s = Scheduler::new(p.clone());
        let c = GraphState::new(18).edges(30).seed(8).build();
        let mapped = map_with(&p, MapperConfig::hybrid(1.0), &c);
        let schedule = s.schedule_mapped(&mapped);
        // Per-atom intervals must be disjoint.
        let mut per_atom: std::collections::HashMap<AtomId, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for item in &schedule.items {
            for a in item.atoms() {
                per_atom
                    .entry(a)
                    .or_default()
                    .push((item.start_us(), item.end_us()));
            }
        }
        for (atom, mut intervals) in per_atom {
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in intervals.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-9, "atom {atom} double-booked: {w:?}");
            }
        }
    }
}
