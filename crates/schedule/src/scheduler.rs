//! ASAP scheduling with restriction constraints and AOD batching.
//!
//! Two entry points share one scheduling core:
//!
//! * [`Scheduler::schedule_mapped`] — the classic two-pass API: walk a
//!   fully materialized [`MappedCircuit`].
//! * [`IncrementalScheduler`] — the streaming core itself, a
//!   [`na_mapper::OpSink`]: feed [`MappedOp`]s one at a time (e.g.
//!   directly from [`na_mapper::HybridMapper::map_into`]) and AOD-batch
//!   merging, restriction checks and Eq. (1) metric accumulation happen
//!   op-by-op, with no intermediate full materialization.
//!
//! Both paths are item-for-item identical by construction:
//! `schedule_mapped` is a loop over `IncrementalScheduler::push`.

use na_arch::{aod, AodConstraints, HardwareParams, Lattice, Move, Site, Target};
use na_circuit::{decompose_to_native, Circuit};
use na_mapper::{AtomId, InitialLayout, MappedCircuit, MappedOp, OpSink};

use crate::aod_program::{lower_batch, validate_program_with};
use crate::items::{BatchedMove, Schedule, ScheduledItem};
use crate::metrics::{ComparisonReport, ScheduleMetrics};
use crate::restrict::RestrictIndex;

/// Schedules mapped circuits and original (unrouted) circuits under the
/// hardware timing model.
///
/// Scheduling is as-soon-as-possible in stream order with two NA-specific
/// rules (paper §2.1, §3.2 (5)):
///
/// * two Rydberg operations may overlap in time only if every pair of
///   atoms from different gates keeps at least `r_restr` distance,
/// * consecutive shuttle moves merge into one AOD transaction when their
///   row/column orders are consistent (no crossing) and no move targets a
///   site another batched move is still vacating.
#[derive(Debug, Clone)]
pub struct Scheduler {
    params: HardwareParams,
    lattice: Lattice,
    aod: AodConstraints,
}

impl Scheduler {
    /// Creates a scheduler for the given hardware on its full square
    /// lattice with protocol-only AOD constraints.
    pub fn new(params: HardwareParams) -> Self {
        let lattice = Lattice::new(params.lattice_side);
        Scheduler {
            params,
            lattice,
            aod: AodConstraints::default(),
        }
    }

    /// Creates a scheduler for a backend [`Target`]: trap topology and
    /// AOD constraint set come from the target description.
    pub fn for_target(target: &dyn Target) -> Self {
        Scheduler {
            params: target.params().clone(),
            lattice: target.lattice(),
            aod: target.aod_constraints(),
        }
    }

    /// Replaces the AOD constraint set (e.g. a service-level batch cap
    /// stricter than the target's).
    pub fn with_aod_constraints(mut self, aod: AodConstraints) -> Self {
        self.aod = aod;
        self
    }

    /// The hardware parameters.
    pub fn params(&self) -> &HardwareParams {
        &self.params
    }

    /// The trap topology schedules are validated against.
    pub fn lattice(&self) -> Lattice {
        self.lattice
    }

    /// The AOD constraint set applied to transaction batching.
    pub fn aod_constraints(&self) -> AodConstraints {
        self.aod
    }

    /// Schedules a mapped operation stream.
    ///
    /// Runs of consecutive shuttle moves (no gate in between) are
    /// repartitioned into as few AOD transactions as the constraints
    /// allow: a move may join any open batch of its run that is
    /// AOD-compatible, provided every earlier move it conflicts with
    /// (vacate-before-fill on a shared site, or the same atom moving
    /// twice) sits in a strictly earlier batch. This mirrors the paper's
    /// aggressive parallel scheduling of independent rearrangements.
    pub fn schedule_mapped(&self, mapped: &MappedCircuit) -> Schedule {
        let mut inc = IncrementalScheduler::with_topology(
            &self.params,
            self.lattice,
            self.aod,
            mapped.num_qubits,
            mapped.num_atoms,
            mapped.layout,
        );
        for op in mapped.iter() {
            inc.push(op);
        }
        inc.finish()
    }

    /// Schedules the *original* circuit assuming ideal all-to-all
    /// connectivity (no routing, no restriction): the baseline of the
    /// paper's `Δ` metrics. Non-native gates are decomposed first and
    /// operations are ordered by the commutation-aware DAG so the
    /// baseline enjoys the same reordering freedom as the mapped stream.
    pub fn schedule_original(&self, circuit: &Circuit) -> Schedule {
        let native = if circuit.is_native() {
            circuit.clone()
        } else {
            decompose_to_native(circuit)
        };
        let order = na_circuit::CircuitDag::new(&native).topological_order();
        let n = native.num_qubits() as usize;
        let mut avail = vec![0.0f64; n];
        let mut items = Vec::with_capacity(native.len());
        let mut makespan = 0.0f64;
        for i in order {
            let op = &native.ops()[i];
            let start = op
                .qubits()
                .iter()
                .map(|q| avail[q.index()])
                .fold(0.0, f64::max);
            let dur = op.duration_us(&self.params);
            for q in op.qubits() {
                avail[q.index()] = start + dur;
            }
            makespan = makespan.max(start + dur);
            // Atom/site identifiers mirror the identity layout.
            let atoms: Vec<AtomId> = op.qubits().iter().map(|q| AtomId(q.0)).collect();
            let sites: Vec<Site> = atoms
                .iter()
                .map(|a| self.lattice.site(a.0 as usize))
                .collect();
            if op.arity() == 1 {
                items.push(ScheduledItem::SingleQubit {
                    atom: atoms[0],
                    site: sites[0],
                    start_us: start,
                    duration_us: dur,
                    op_index: Some(i),
                });
            } else {
                items.push(ScheduledItem::Rydberg {
                    atoms,
                    sites,
                    start_us: start,
                    duration_us: dur,
                    op_index: Some(i),
                });
            }
        }
        Schedule {
            items,
            makespan_us: makespan,
            num_qubits: native.num_qubits(),
            num_atoms: self.params.num_atoms,
        }
    }

    /// Convenience: schedules both versions and produces the Table 1a
    /// comparison (`ΔCZ`, `ΔT`, `δF`).
    pub fn compare(&self, circuit: &Circuit, mapped: &MappedCircuit) -> ComparisonReport {
        let original = ScheduleMetrics::of(&self.schedule_original(circuit), &self.params);
        let routed = ScheduleMetrics::of(&self.schedule_mapped(mapped), &self.params);
        ComparisonReport::between(&original, &routed)
    }
}

/// Returns `true` if `mv` can join the pending batch: AOD-compatible with
/// every member and not touching a site another member vacates or fills.
fn batch_accepts(batch: &[BatchedMove], mv: &BatchedMove) -> bool {
    batch.iter().all(|b| {
        aod::moves_fully_parallel(&Move::new(b.from, b.to), &Move::new(mv.from, mv.to))
            && b.to != mv.from
            && b.from != mv.to
    })
}

/// Open batches of the current shuttle run: moves are placed into the
/// earliest batch their dependencies and the AOD constraints permit.
/// Flushed batch vectors recycle through `pool`, so a long stream of
/// shuttle runs stops allocating once the high-water mark is reached.
#[derive(Debug, Clone, Default)]
struct BatchRun {
    batches: Vec<Vec<BatchedMove>>,
    pool: Vec<Vec<BatchedMove>>,
}

impl BatchRun {
    fn new() -> Self {
        BatchRun::default()
    }

    fn push(&mut self, mv: BatchedMove) {
        // Moves conflicting with `mv` force it into a strictly later
        // batch: vacate-before-fill on shared sites, or the same atom
        // shuttling twice.
        let mut earliest = 0usize;
        for (bi, batch) in self.batches.iter().enumerate() {
            let conflicts = batch
                .iter()
                .any(|b| b.to == mv.from || b.from == mv.to || b.atom == mv.atom);
            if conflicts {
                earliest = bi + 1;
            }
        }
        for batch in self.batches.iter_mut().skip(earliest) {
            if batch_accepts(batch, &mv) {
                batch.push(mv);
                return;
            }
        }
        let mut batch = self.pool.pop().unwrap_or_default();
        batch.clear();
        batch.push(mv);
        self.batches.push(batch);
    }
}

/// Reusable working buffers of the streaming scheduler: the flush-wave
/// accept/defer lists, the incremental target-grid validator state, and
/// a pool recycling the site vectors of retired restriction intervals.
/// Capacity only — no semantic state across calls.
#[derive(Debug, Clone, Default)]
struct SchedScratch {
    accepted: Vec<BatchedMove>,
    deferred: Vec<BatchedMove>,
    delta: DeltaGrid,
    site_pool: Vec<Vec<Site>>,
}

/// A batch spanning more distinct source rows than this accumulates a
/// full lattice unit (4 × [`crate::aod_program::LOAD_OFFSET`]) of grid
/// drift during sequential loading, so intermediate (load-phase) ghost
/// spots can land back on-lattice over arbitrary sites. At or below it,
/// every intermediate grid intersection is either off-lattice
/// (fractional drift) or sits exactly on one of the batch's own source
/// sites — an intended trap — so only the final target grid (the
/// deactivation check) can reject a candidate. See
/// [`DeltaGrid::admits`].
const DELTA_MAX_SRC_ROWS: usize = 4;

/// Incremental acceptance state for one flush wave: the accepted moves'
/// target row/column grid, the prefix of that grid already proven
/// ghost-spot free, and the accepted source sites.
///
/// [`IncrementalScheduler::flush_run`] accepts a candidate move only if
/// the lowered transaction of `accepted + candidate` validates against
/// the live occupancy. Re-lowering and re-validating the whole batch per
/// candidate is O(batch²) per wave; this struct reduces the predicate to
/// the candidate's *new* row × column intersections, which is exact:
///
/// * within a wave every accepted move is pairwise AOD-compatible
///   ([`batch_accepts`] / [`na_arch::aod::moves_fully_parallel`]), so
///   the lowered program's structural checks (`Malformed`,
///   `LineCrossing`, `WrongTarget`) can never fire — axis compatibility
///   makes the row/col maps strictly monotone by construction;
/// * with at most [`DELTA_MAX_SRC_ROWS`] distinct source rows the
///   load-phase ghost checks pass automatically (see the constant's
///   docs), leaving the deactivation check over the full target grid
///   `rows × cols`;
/// * occupancy (`site_free_at`) is frozen for the duration of a wave —
///   batches flush only after the wave's acceptance loop — and the
///   source set only grows, so a grid point that passed once passes for
///   every later candidate of the wave: the `verified_*` prefix never
///   needs re-checking.
///
/// Batches that grow beyond [`DELTA_MAX_SRC_ROWS`] source rows fall back
/// to lowering + [`validate_program_with`] on the whole candidate batch
/// — bit-identical to the original predicate, just restricted to the
/// rare deep-grid case. Equivalence is covered by the
/// `delta_acceptance_matches_full_validation` property test and
/// re-checked per emitted batch as a debug assertion.
#[derive(Debug, Clone, Default)]
struct DeltaGrid {
    /// Distinct target rows (y) of the accepted moves, unsorted.
    target_rows: Vec<i32>,
    /// Distinct target columns (x) of the accepted moves, unsorted.
    target_cols: Vec<i32>,
    /// Rows of the already-validated grid product (subset of
    /// `target_rows`); empty until a candidate has actually been
    /// checked — the wave's first move is accepted unchecked, exactly
    /// like the original `accepted.len() > 1` guard.
    verified_rows: Vec<i32>,
    /// Columns of the already-validated grid product.
    verified_cols: Vec<i32>,
    /// Distinct source rows (y) of the accepted moves.
    src_rows: Vec<i32>,
    /// Source sites of the accepted moves (the validator's non-spectator
    /// exclusions).
    sources: Vec<Site>,
}

impl DeltaGrid {
    /// Resets for a new wave, keeping capacity.
    fn clear(&mut self) {
        self.target_rows.clear();
        self.target_cols.clear();
        self.verified_rows.clear();
        self.verified_cols.clear();
        self.src_rows.clear();
        self.sources.clear();
    }

    /// Would the batch `accepted + mv` still pass [`validate_program_with`]
    /// against the current occupancy? Exact, per the type-level proof
    /// above. Does not modify the grid; `accepted` is borrowed mutably
    /// only to lower the candidate batch in place on the fallback path.
    fn admits(
        &self,
        mv: &BatchedMove,
        accepted: &mut Vec<BatchedMove>,
        lattice: &Lattice,
        site_free_at: &[f64],
    ) -> bool {
        let new_src_rows = self.src_rows.len() + usize::from(!self.src_rows.contains(&mv.from.y));
        if new_src_rows > DELTA_MAX_SRC_ROWS {
            // Deep grid: load-phase drift can reach a full lattice unit,
            // so run the full validator on the candidate batch.
            accepted.push(*mv);
            let ok = validate_program_with(&lower_batch(accepted), lattice, |site| {
                site_free_at[lattice.index(site)].is_infinite()
            })
            .is_ok();
            accepted.pop();
            return ok;
        }
        // Deactivation check over the candidate target grid, skipping the
        // verified prefix. Target coordinates are exact integers, so
        // every intersection is "on-lattice" in the validator's sense;
        // a point fails iff it covers a stored atom that is neither an
        // accepted source nor the candidate's own.
        let new_row = (!self.target_rows.contains(&mv.to.y)).then_some(mv.to.y);
        let new_col = (!self.target_cols.contains(&mv.to.x)).then_some(mv.to.x);
        for &row in self.target_rows.iter().chain(new_row.as_ref()) {
            let row_verified = self.verified_rows.contains(&row);
            for &col in self.target_cols.iter().chain(new_col.as_ref()) {
                if row_verified && self.verified_cols.contains(&col) {
                    continue;
                }
                let site = Site::new(col, row);
                if !lattice.contains(site) || !site_free_at[lattice.index(site)].is_infinite() {
                    continue;
                }
                if site != mv.from && !self.sources.contains(&site) {
                    return false;
                }
            }
        }
        true
    }

    /// Folds an accepted move into the grid. `checked` records whether
    /// the acceptance actually validated the grid (everything but the
    /// wave's first move): if so, the whole current product becomes the
    /// verified prefix — skipped points were verified before and only
    /// stay valid as sources grow.
    fn commit(&mut self, mv: &BatchedMove, checked: bool) {
        if !self.target_rows.contains(&mv.to.y) {
            self.target_rows.push(mv.to.y);
        }
        if !self.target_cols.contains(&mv.to.x) {
            self.target_cols.push(mv.to.x);
        }
        if !self.src_rows.contains(&mv.from.y) {
            self.src_rows.push(mv.from.y);
        }
        self.sources.push(mv.from);
        if checked {
            self.verified_rows.clone_from(&self.target_rows);
            self.verified_cols.clone_from(&self.target_cols);
        }
    }
}

/// Streaming ASAP scheduler: consumes a [`MappedOp`] stream one
/// operation at a time and builds the schedule, the AOD batches and the
/// Eq. (1) metric accumulators incrementally.
///
/// This is the scheduling core behind [`Scheduler::schedule_mapped`],
/// exposed so the mapper can feed it directly
/// ([`na_mapper::HybridMapper::map_into`]) — map + schedule then run as
/// one fused pass without materializing the op stream in between. It
/// implements [`OpSink`], so it can stand anywhere a sink is expected.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::generators::GraphState;
/// use na_mapper::{HybridMapper, InitialLayout, MapperConfig};
/// use na_schedule::IncrementalScheduler;
///
/// let params = HardwareParams::mixed()
///     .to_builder()
///     .lattice(5, 3.0)
///     .num_atoms(12)
///     .build()?;
/// let circuit = GraphState::new(10).edges(13).seed(5).build();
/// let mapper = HybridMapper::new(params.clone(), MapperConfig::default())?;
///
/// // Fused single pass: the mapper streams ops straight into the
/// // scheduler; no intermediate MappedCircuit.
/// let mut inc = IncrementalScheduler::new(
///     &params, circuit.num_qubits(), params.num_atoms, InitialLayout::Identity,
/// );
/// mapper.map_into(&circuit, &mut inc)?;
/// let (schedule, metrics) = inc.finish_with_metrics();
/// assert!(schedule.makespan_us > 0.0);
/// assert!(metrics.log10_success <= 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalScheduler {
    params: HardwareParams,
    num_qubits: u32,
    /// Open AOD batches of the current run of consecutive shuttles.
    run: BatchRun,
    avail: Vec<f64>,
    /// Smallest entry of `avail` — maintained incrementally (see
    /// [`Self::occupy`]), this is the pruning horizon for retired
    /// restriction intervals.
    low_water: f64,
    /// How many atoms are known to sit exactly at `low_water`. May
    /// undercount (never overcount); a rescan restores it when it hits
    /// zero.
    low_count: usize,
    /// Per trap site: the time from which the site is free (∞ while
    /// occupied). Starts from the initial layout. Within a flush wave
    /// this doubles as the occupancy bitmap the AOD validator reads —
    /// batches only commit (and sites only change) between waves.
    site_free_at: Vec<f64>,
    lattice: Lattice,
    /// Backend AOD constraint set (transaction batch caps).
    aod: AodConstraints,
    /// Rydberg intervals still relevant for restriction checks, bucketed
    /// by coarse lattice region so a push only tests nearby intervals.
    restrict: RestrictIndex,
    /// Time from which the (single) AOD device is free: there is one
    /// physical deflector grid, so transactions are mutually exclusive
    /// in time even when their atoms and sites are disjoint.
    aod_free_at: f64,
    items: Vec<ScheduledItem>,
    makespan: f64,
    /// Σ item durations so far (the busy part of Eq. (1)'s idle term).
    busy_us: f64,
    /// Σ ln F_O so far (the gate-fidelity product of Eq. (1)).
    ln_fidelity: f64,
    /// Reusable buffers (see [`SchedScratch`]).
    scratch: SchedScratch,
    /// Optional cooperative stop signal, polled once per flush wave.
    cancel: Option<na_mapper::CancelToken>,
    /// Latched once the token trips: subsequent flushes become no-ops
    /// so a doomed compile stops paying for batch validation. The
    /// schedule is unusable from then on — callers observe the latch
    /// via [`IncrementalScheduler::cancelled`] and must discard it.
    cancelled: Option<na_mapper::CancelReason>,
}

impl IncrementalScheduler {
    /// Creates a streaming scheduler for a stream of `num_qubits` logical
    /// qubits over `num_atoms` atoms starting from `layout` — the same
    /// context a [`MappedCircuit`] records.
    pub fn new(
        params: &HardwareParams,
        num_qubits: u32,
        num_atoms: u32,
        layout: InitialLayout,
    ) -> Self {
        IncrementalScheduler::with_topology(
            params,
            Lattice::new(params.lattice_side),
            AodConstraints::default(),
            num_qubits,
            num_atoms,
            layout,
        )
    }

    /// Creates a streaming scheduler on an explicit trap topology with a
    /// backend AOD constraint set — the target-aware constructor behind
    /// [`Scheduler::for_target`].
    pub fn with_topology(
        params: &HardwareParams,
        lattice: Lattice,
        aod: AodConstraints,
        num_qubits: u32,
        num_atoms: u32,
        layout: InitialLayout,
    ) -> Self {
        let mut site_free_at = vec![0.0; lattice.num_sites()];
        for site in layout.place(&lattice, num_atoms) {
            site_free_at[lattice.index(site)] = f64::INFINITY;
        }
        let restrict = RestrictIndex::new(lattice, params.r_restr);
        // An empty `avail` folds to +∞ — match that so the pruning
        // horizon is identical to the old per-call fold.
        let (low_water, low_count) = if num_atoms == 0 {
            (f64::INFINITY, 0)
        } else {
            (0.0, num_atoms as usize)
        };
        IncrementalScheduler {
            params: params.clone(),
            num_qubits,
            run: BatchRun::new(),
            avail: vec![0.0; num_atoms as usize],
            low_water,
            low_count,
            site_free_at,
            lattice,
            aod,
            restrict,
            aod_free_at: 0.0,
            items: Vec::new(),
            makespan: 0.0,
            busy_us: 0.0,
            ln_fidelity: 0.0,
            scratch: SchedScratch::default(),
            cancel: None,
            cancelled: None,
        }
    }

    /// Attaches a cooperative [`na_mapper::CancelToken`],
    /// polled once per flush wave.
    ///
    /// Once the token trips, every later flush is a no-op and the
    /// in-progress schedule is abandoned — check
    /// [`IncrementalScheduler::cancelled`] before trusting
    /// [`IncrementalScheduler::finish`] output. Polls are pure reads:
    /// with an untripped token the schedule is byte-identical to a
    /// token-free run.
    pub fn set_cancel(&mut self, token: na_mapper::CancelToken) {
        self.cancel = Some(token);
    }

    /// Why the attached token tripped, if it did.
    pub fn cancelled(&self) -> Option<na_mapper::CancelReason> {
        self.cancelled
    }

    /// Polls the attached token (latching a trip); `true` means stop.
    fn poll_cancel(&mut self) -> bool {
        if self.cancelled.is_some() {
            return true;
        }
        if let Some(token) = &self.cancel {
            if let Err(reason) = token.check() {
                self.cancelled = Some(reason);
                return true;
            }
        }
        false
    }

    /// Consumes the next operation of the mapped stream.
    ///
    /// Shuttle moves accumulate into the open AOD-batch run; any other
    /// operation seals the run (flushing its batches as transactions)
    /// and is then placed ASAP under the restriction constraint.
    pub fn push(&mut self, op: &MappedOp) {
        match op {
            MappedOp::Shuttle { atom, from, to } => {
                self.run.push(BatchedMove {
                    atom: *atom,
                    from: *from,
                    to: *to,
                });
            }
            MappedOp::Gate {
                op_index,
                op,
                atoms,
                sites,
            } => {
                self.flush_run();
                if op.arity() == 1 {
                    self.push_single(atoms[0], sites[0], self.params.t_single_us, Some(*op_index));
                } else {
                    self.push_rydberg(
                        atoms.clone(),
                        sites.clone(),
                        self.params.cz_family_time_us(op.arity()),
                        Some(*op_index),
                    );
                }
            }
            MappedOp::Swap {
                a,
                b,
                site_a,
                site_b,
            } => {
                self.flush_run();
                self.push_swap([*a, *b], [*site_a, *site_b]);
            }
            // `MappedOp` is non-exhaustive within the workspace only to
            // keep downstream matches honest; new kinds must be handled
            // here first.
            other => unreachable!("unhandled mapped op {other:?}"),
        }
    }

    /// Number of items scheduled so far (open shuttle runs not counted
    /// until sealed).
    pub fn items_so_far(&self) -> usize {
        self.items.len()
    }

    /// Seals the stream and returns the finished schedule.
    pub fn finish(mut self) -> Schedule {
        self.flush_run();
        Schedule {
            items: self.items,
            makespan_us: self.makespan,
            num_qubits: self.num_qubits,
            num_atoms: self.avail.len() as u32,
        }
    }

    /// Seals the stream and returns the schedule together with the
    /// Eq. (1) metrics accumulated op-by-op.
    ///
    /// The metrics are bit-identical to
    /// [`ScheduleMetrics::of`] on the returned schedule: the
    /// accumulators add the same terms in the same order.
    pub fn finish_with_metrics(mut self) -> (Schedule, ScheduleMetrics) {
        self.flush_run();
        let schedule = Schedule {
            items: self.items,
            makespan_us: self.makespan,
            num_qubits: self.num_qubits,
            num_atoms: self.avail.len() as u32,
        };
        let metrics = ScheduleMetrics::from_accumulators(
            schedule.makespan_us,
            self.busy_us,
            self.ln_fidelity,
            self.num_qubits,
            schedule.cz_count(),
            schedule.move_count(),
            &self.params,
        );
        (schedule, metrics)
    }

    /// Seals the current shuttle run, flushing its batches in dependency
    /// order as AOD transactions.
    ///
    /// Each batch is re-partitioned against the *live* occupancy before
    /// it flushes: an AOD transaction's activated grid puts ghost spots
    /// (row × column intersections) over lattice sites — at load time,
    /// where the accumulated [`crate::aod_program::LOAD_OFFSET`]s can
    /// drift earlier lines back on-lattice, and at deactivation, where
    /// the full target grid lands at once. A ghost spot over a stored
    /// spectator atom would trap it, which
    /// [`crate::aod_program::validate_program`] rejects. [`BatchRun`]
    /// groups moves by pairwise AOD compatibility only — it cannot see
    /// occupancy at execution time — so each wave here accepts a move
    /// only if the *lowered candidate transaction would validate*
    /// against the current occupancy; rejected moves split off into
    /// follow-up transactions. The predicate is evaluated incrementally
    /// by [`DeltaGrid`] (only the candidate's new grid intersections
    /// are probed; deep grids fall back to the full validator), which
    /// is exactly equivalent to lowering + validating the candidate
    /// batch — so "every emitted batch passes validation" stays true by
    /// construction, re-asserted here in debug builds. A single move
    /// always validates (its 1×1 grid is its own source/target), so
    /// every wave makes progress.
    fn flush_run(&mut self) {
        if self.run.batches.is_empty() {
            return;
        }
        // Cancellation checkpoint: one wave of batch validation is the
        // scheduler's unit of work between polls. A tripped token
        // abandons the run — the whole schedule is discarded upstream.
        if self.poll_cancel() {
            self.run.batches.clear();
            return;
        }
        let batch_cap = self.aod.max_batch_moves.unwrap_or(usize::MAX).max(1);
        // Take the reusable buffers out of `self` so the loop can borrow
        // the scheduler mutably; all of them go back (with their
        // capacity) at the end.
        let mut batches = std::mem::take(&mut self.run.batches);
        let mut accepted = std::mem::take(&mut self.scratch.accepted);
        let mut deferred = std::mem::take(&mut self.scratch.deferred);
        let mut delta = std::mem::take(&mut self.scratch.delta);
        for batch in &mut batches {
            // `batch` holds this wave's pending moves; rejected ones
            // cycle back into it through `deferred`.
            while !batch.is_empty() {
                accepted.clear();
                deferred.clear();
                delta.clear();
                for mv in batch.drain(..) {
                    // Backend batch cap (AodConstraints) before the
                    // protocol validator.
                    if accepted.len() >= batch_cap {
                        deferred.push(mv);
                        continue;
                    }
                    // The wave's opening move is accepted unchecked —
                    // its 1×1 grid covers only its own source/target.
                    let checked = !accepted.is_empty();
                    if !checked
                        || delta.admits(&mv, &mut accepted, &self.lattice, &self.site_free_at)
                    {
                        delta.commit(&mv, checked);
                        accepted.push(mv);
                    } else {
                        deferred.push(mv);
                    }
                }
                debug_assert!(
                    accepted.len() <= 1
                        || validate_program_with(&lower_batch(&accepted), &self.lattice, |site| {
                            self.site_free_at[self.lattice.index(site)].is_infinite()
                        })
                        .is_ok(),
                    "emitted batch must pass the full validator"
                );
                self.flush_batch(&accepted);
                std::mem::swap(batch, &mut deferred);
            }
        }
        // Recycle the (now empty) batch vectors for the next run.
        self.run.pool.append(&mut batches);
        self.scratch.accepted = accepted;
        self.scratch.deferred = deferred;
        self.scratch.delta = delta;
    }

    /// Records a finished item, folding its duration and fidelity terms
    /// into the Eq. (1) accumulators — the same shared per-item formula
    /// [`ScheduleMetrics::of`] folds over a finished schedule, in the
    /// same order, so both paths are bit-identical by construction.
    fn record(&mut self, item: ScheduledItem) {
        self.busy_us += item.duration_us();
        self.ln_fidelity += ScheduleMetrics::item_ln_fidelity(&item, &self.params);
        self.items.push(item);
    }

    fn earliest(&self, atoms: &[AtomId]) -> f64 {
        atoms
            .iter()
            .map(|a| self.avail[a.index()])
            .fold(0.0, f64::max)
    }

    fn occupy(&mut self, atoms: &[AtomId], start: f64, dur: f64) {
        // Maintain the `avail` low-water mark incrementally: an atom's
        // availability never decreases (`start ≥ avail[a]`), so a write
        // can only lift an atom off the mark, never drop one below it.
        // `low_count` may undercount when a minimum atom is rewritten to
        // the identical value, so a zero count triggers a full rescan —
        // `low_water` itself is exact at every read.
        for a in atoms {
            if self.avail[a.index()] <= self.low_water {
                self.low_count = self.low_count.saturating_sub(1);
            }
            self.avail[a.index()] = start + dur;
        }
        if self.low_count == 0 && !self.avail.is_empty() {
            self.low_water = self.avail.iter().copied().fold(f64::INFINITY, f64::min);
            self.low_count = self.avail.iter().filter(|&&a| a <= self.low_water).count();
        }
        self.makespan = self.makespan.max(start + dur);
    }

    /// Delays `t0` until no active Rydberg interval within `r_restr`
    /// overlaps `[t0, t0 + dur)`.
    ///
    /// ASAP start times are NOT monotone in stream order — a
    /// later-streamed gate on long-idle atoms may start *earlier* than
    /// the current one — so intervals stay live until they end at or
    /// before the `avail` low-water mark (any future start is at least
    /// the minimum atom availability, which only ever grows; a tighter
    /// time bound cannot be correct, because a gate on two so-far-idle
    /// atoms may still legally start at t = 0). The bound is weak while
    /// any atom stays idle, so on long streams the live set grows with
    /// the circuit — which is why the index buckets intervals by coarse
    /// lattice region ([`RestrictIndex`]) and each check only tests
    /// intervals with a site near the pushed gate, instead of the old
    /// linear scan over every live interval.
    fn respect_restriction(&mut self, sites: &[Site], t0: f64, dur: f64) -> f64 {
        self.restrict.earliest_clear(sites, t0, dur)
    }

    fn push_single(&mut self, atom: AtomId, site: Site, dur: f64, op_index: Option<usize>) {
        let start = self.earliest(&[atom]);
        self.occupy(&[atom], start, dur);
        self.record(ScheduledItem::SingleQubit {
            atom,
            site,
            start_us: start,
            duration_us: dur,
            op_index,
        });
    }

    fn push_rydberg(
        &mut self,
        atoms: Vec<AtomId>,
        sites: Vec<Site>,
        dur: f64,
        op_index: Option<usize>,
    ) {
        let t0 = self.earliest(&atoms);
        let start = self.respect_restriction(&sites, t0, dur);
        self.occupy(&atoms, start, dur);
        let mut interval_sites = self.scratch.site_pool.pop().unwrap_or_default();
        interval_sites.extend_from_slice(&sites);
        self.restrict.insert(
            start,
            start + dur,
            interval_sites,
            self.low_water,
            &mut self.scratch.site_pool,
        );
        self.record(ScheduledItem::Rydberg {
            atoms,
            sites,
            start_us: start,
            duration_us: dur,
            op_index,
        });
    }

    fn push_swap(&mut self, atoms: [AtomId; 2], sites: [Site; 2]) {
        let dur = self.params.swap_time_us();
        let t0 = self.earliest(&atoms);
        let start = self.respect_restriction(&sites, t0, dur);
        self.occupy(&atoms, start, dur);
        let mut interval_sites = self.scratch.site_pool.pop().unwrap_or_default();
        interval_sites.extend_from_slice(&sites);
        self.restrict.insert(
            start,
            start + dur,
            interval_sites,
            self.low_water,
            &mut self.scratch.site_pool,
        );
        self.record(ScheduledItem::SwapComposite {
            atoms,
            sites,
            start_us: start,
            duration_us: dur,
        });
    }

    fn flush_batch(&mut self, moves: &[BatchedMove]) {
        if moves.is_empty() {
            return;
        }
        let atoms: Vec<AtomId> = moves.iter().map(|m| m.atom).collect();
        // Besides atom availability, every target site must have been
        // vacated (chains move a blocker away before reusing its trap),
        // and the single AOD device must be free: concurrent
        // transactions would superimpose their grids, re-creating the
        // ghost-spot collisions the batch partition avoids.
        let start = moves
            .iter()
            .map(|m| self.site_free_at[self.lattice.index(m.to)])
            .fold(self.earliest(&atoms).max(self.aod_free_at), f64::max);
        debug_assert!(start.is_finite(), "move into a never-vacated site");
        let max_dist = moves
            .iter()
            .map(|m| m.from.rectilinear_distance(m.to))
            .fold(0.0, f64::max);
        let dur = self.params.shuttle_time_us(max_dist);
        self.occupy(&atoms, start, dur);
        self.aod_free_at = start + dur;
        for m in moves {
            self.site_free_at[self.lattice.index(m.from)] = start + dur;
            self.site_free_at[self.lattice.index(m.to)] = f64::INFINITY;
        }
        self.record(ScheduledItem::AodBatch {
            moves: moves.to_vec(),
            start_us: start,
            duration_us: dur,
        });
    }
}

impl OpSink for IncrementalScheduler {
    /// Streams the mapper's output straight into the scheduler — the
    /// fused map→schedule pass.
    fn accept(&mut self, op: MappedOp) {
        self.push(&op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_circuit::generators::{GraphState, Qft};
    use na_mapper::{HybridMapper, MapperConfig};

    fn params(preset: HardwareParams, side: u32, atoms: u32) -> HardwareParams {
        preset
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .build()
            .expect("valid")
    }

    fn map_with(p: &HardwareParams, cfg: MapperConfig, circuit: &Circuit) -> MappedCircuit {
        HybridMapper::new(p.clone(), cfg)
            .expect("valid")
            .map(circuit)
            .expect("mappable")
            .mapped
    }

    #[test]
    fn original_schedule_respects_dependencies() {
        let p = params(HardwareParams::mixed(), 5, 12);
        let s = Scheduler::new(p);
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).h(1);
        let schedule = s.schedule_original(&c);
        assert_eq!(schedule.len(), 3);
        // h(0) at 0, cz after it, h(1) after cz.
        assert_eq!(schedule.items[0].start_us(), 0.0);
        assert!(schedule.items[1].start_us() >= 0.5);
        assert!(schedule.items[2].start_us() >= schedule.items[1].end_us() - 1e-9);
        assert!((schedule.makespan_us - (0.5 + 0.2 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn parallel_gates_overlap_in_original() {
        let p = params(HardwareParams::mixed(), 5, 12);
        let s = Scheduler::new(p);
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3);
        let schedule = s.schedule_original(&c);
        assert_eq!(schedule.items[0].start_us(), 0.0);
        assert_eq!(schedule.items[1].start_us(), 0.0);
        assert!((schedule.makespan_us - 0.2).abs() < 1e-12);
    }

    #[test]
    fn restriction_serializes_nearby_rydberg_gates() {
        // Two CZ gates on disjoint atom pairs that sit within r_restr of
        // each other must not overlap in the mapped schedule.
        let p = params(HardwareParams::mixed(), 5, 12); // r_restr = 2.5
        let s = Scheduler::new(p.clone());
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3); // atoms at (0,0),(1,0),(2,0),(3,0): within 2.5
        let mapped = map_with(&p, MapperConfig::gate_only(), &c);
        let schedule = s.schedule_mapped(&mapped);
        let rydberg: Vec<_> = schedule.items.iter().filter(|i| i.is_rydberg()).collect();
        assert_eq!(rydberg.len(), 2);
        let (a, b) = (&rydberg[0], &rydberg[1]);
        let disjoint_in_time =
            a.end_us() <= b.start_us() + 1e-9 || b.end_us() <= a.start_us() + 1e-9;
        assert!(disjoint_in_time, "restricted gates must serialize");
    }

    #[test]
    fn distant_rydberg_gates_parallelize() {
        let p = params(HardwareParams::mixed(), 8, 40); // r_restr = 2.5
        let s = Scheduler::new(p.clone());
        let mut c = Circuit::new(40);
        // Atoms (0,0),(1,0) and (0,4),(1,4): distance 4 > 2.5.
        c.cz(0, 1).cz(32, 33);
        let mapped = map_with(&p, MapperConfig::gate_only(), &c);
        let schedule = s.schedule_mapped(&mapped);
        let rydberg: Vec<_> = schedule.items.iter().filter(|i| i.is_rydberg()).collect();
        assert_eq!(rydberg.len(), 2);
        assert_eq!(rydberg[0].start_us(), rydberg[1].start_us());
    }

    #[test]
    fn compatible_moves_batch_together() {
        let p = params(HardwareParams::shuttling(), 6, 12);
        let s = Scheduler::new(p.clone());
        let qft = Qft::new(10).build();
        let mapped = map_with(&p, MapperConfig::shuttle_only(), &qft);
        let schedule = s.schedule_mapped(&mapped);
        assert_eq!(schedule.move_count(), mapped.shuttle_count());
        // Batching never increases the transaction count.
        assert!(schedule.batch_count() <= schedule.move_count());
    }

    /// Regression: two AOD-compatible moves whose combined target grid
    /// puts a deactivation ghost spot over a stored spectator atom must
    /// be split into separate transactions. Identity layout, 13 atoms:
    /// atom 12 sits at (0,2); the targets (0,3) and (2,2) would form the
    /// intersection (0,2) right above it.
    #[test]
    fn ghost_spot_collisions_split_batches() {
        let p = params(HardwareParams::shuttling(), 6, 13);
        let s = Scheduler::new(p.clone());
        let mut mapped = MappedCircuit::new(13, 13);
        mapped.ops.push(MappedOp::Shuttle {
            atom: AtomId(6),
            from: Site::new(0, 1),
            to: Site::new(0, 3),
        });
        mapped.ops.push(MappedOp::Shuttle {
            atom: AtomId(1),
            from: Site::new(1, 0),
            to: Site::new(2, 2),
        });
        let schedule = s.schedule_mapped(&mapped);
        assert_eq!(
            schedule.batch_count(),
            2,
            "colliding targets must not share a transaction"
        );
        // The split is only physical if the transactions are disjoint in
        // time: one AOD device means concurrent transactions would
        // superimpose their grids and re-create the collision.
        let batches: Vec<_> = schedule
            .items
            .iter()
            .filter(|i| matches!(i, ScheduledItem::AodBatch { .. }))
            .collect();
        assert!(
            batches[1].start_us() >= batches[0].end_us() - 1e-12,
            "split transactions must serialize on the AOD device"
        );
        // Each lowered transaction validates against the replayed
        // occupancy (the guard that caught the original bug).
        let lattice = na_arch::Lattice::new(p.lattice_side);
        let mut site_of_atom: Vec<Site> = na_mapper::InitialLayout::Identity.place(&lattice, 13);
        for item in &schedule.items {
            if let ScheduledItem::AodBatch { moves, .. } = item {
                let program = crate::aod_program::lower_batch(moves);
                crate::aod_program::validate_program(&program, &lattice, &site_of_atom)
                    .expect("split transactions validate");
                for m in moves {
                    site_of_atom[m.atom.index()] = m.to;
                }
            }
        }
    }

    /// Regression: load-phase ghost spots. A batch spanning ≥5 distinct
    /// source rows accumulates 4 × `LOAD_OFFSET` = 1.0 of grid drift
    /// during sequential loading, putting the first row/column lines
    /// back on-lattice while later rows activate — over the spectator
    /// atom at (4, 1) here. The flush partition must split such batches
    /// so every emitted transaction passes `validate_program`.
    #[test]
    fn load_phase_ghost_spots_split_batches() {
        use na_circuit::{GateKind, Operation, Qubit};
        let p = params(HardwareParams::shuttling(), 8, 13);
        let s = Scheduler::new(p.clone());
        let shuttle = |atom: u32, from: Site, to: Site| MappedOp::Shuttle {
            atom: AtomId(atom),
            from,
            to,
        };
        let mut mapped = MappedCircuit::new(13, 13);
        // Identity layout on the 8-lattice: atoms 0–7 fill row 0, atoms
        // 8–12 fill (0,1)…(4,1). Set up sources on the diagonal.
        mapped
            .ops
            .push(shuttle(2, Site::new(2, 0), Site::new(2, 2)));
        mapped
            .ops
            .push(shuttle(3, Site::new(3, 0), Site::new(3, 3)));
        mapped
            .ops
            .push(shuttle(4, Site::new(4, 0), Site::new(4, 4)));
        // A gate seals the setup run.
        mapped.ops.push(MappedOp::Gate {
            op_index: 0,
            op: Operation::new(GateKind::H, vec![Qubit(0)]).unwrap(),
            atoms: vec![AtomId(0)],
            sites: vec![Site::new(0, 0)],
        });
        // Five pairwise AOD-compatible moves across five source rows —
        // BatchRun puts them into ONE batch; atom 12 sits at (4, 1).
        mapped
            .ops
            .push(shuttle(0, Site::new(0, 0), Site::new(0, 3)));
        mapped
            .ops
            .push(shuttle(9, Site::new(1, 1), Site::new(1, 4)));
        mapped
            .ops
            .push(shuttle(2, Site::new(2, 2), Site::new(2, 5)));
        mapped
            .ops
            .push(shuttle(3, Site::new(3, 3), Site::new(3, 6)));
        mapped
            .ops
            .push(shuttle(4, Site::new(4, 4), Site::new(4, 7)));
        let schedule = s.schedule_mapped(&mapped);
        // Replay-validate every emitted transaction — the partition
        // predicate is the validator, so this must hold.
        let lattice = na_arch::Lattice::new(p.lattice_side);
        let mut site_of_atom: Vec<Site> = na_mapper::InitialLayout::Identity.place(&lattice, 13);
        let gate_pos = schedule
            .items
            .iter()
            .position(|i| matches!(i, ScheduledItem::SingleQubit { .. }))
            .expect("the sealing gate is scheduled");
        let mut payload_batches = 0;
        for (pos, item) in schedule.items.iter().enumerate() {
            if let ScheduledItem::AodBatch { moves, .. } = item {
                let occupied: Vec<Site> = site_of_atom.clone();
                let program = crate::aod_program::lower_batch(moves);
                crate::aod_program::validate_program(&program, &lattice, &occupied)
                    .unwrap_or_else(|e| panic!("emitted transaction fails validation: {e}"));
                for m in moves {
                    site_of_atom[m.atom.index()] = m.to;
                }
                if pos > gate_pos {
                    payload_batches += 1;
                }
            }
        }
        assert!(
            payload_batches >= 2,
            "the five-row batch must have been split (got {payload_batches} transactions)"
        );
    }

    #[test]
    fn aod_batch_cap_splits_transactions() {
        let p = params(HardwareParams::shuttling(), 6, 12);
        let qft = Qft::new(10).build();
        let mapped = map_with(&p, MapperConfig::shuttle_only(), &qft);
        let uncapped = Scheduler::new(p.clone()).schedule_mapped(&mapped);
        let capped = Scheduler::new(p.clone())
            .with_aod_constraints(AodConstraints::capped(1))
            .schedule_mapped(&mapped);
        // Same moves, one transaction each under the cap.
        assert_eq!(capped.move_count(), uncapped.move_count());
        assert_eq!(capped.batch_count(), capped.move_count());
        assert!(capped.batch_count() >= uncapped.batch_count());
        // The capped schedule still validates batch by batch.
        let lattice = Lattice::new(p.lattice_side);
        let mut site_of_atom: Vec<Site> =
            na_mapper::InitialLayout::Identity.place(&lattice, p.num_atoms);
        for item in &capped.items {
            if let ScheduledItem::AodBatch { moves, .. } = item {
                assert_eq!(moves.len(), 1);
                let program = crate::aod_program::lower_batch(moves);
                crate::aod_program::validate_program(&program, &lattice, &site_of_atom)
                    .expect("capped transactions validate");
                for m in moves {
                    site_of_atom[m.atom.index()] = m.to;
                }
            }
        }
    }

    #[test]
    fn chain_dependent_moves_do_not_batch() {
        // A move-away followed by a move into the vacated site must be in
        // different AOD transactions.
        let p = params(HardwareParams::shuttling(), 4, 10);
        let s = Scheduler::new(p.clone());
        let mut mapped = MappedCircuit::new(2, 10);
        mapped.ops.push(MappedOp::Shuttle {
            atom: AtomId(5),
            from: Site::new(1, 1),
            to: Site::new(3, 3),
        });
        mapped.ops.push(MappedOp::Shuttle {
            atom: AtomId(0),
            from: Site::new(0, 0),
            to: Site::new(1, 1),
        });
        let schedule = s.schedule_mapped(&mapped);
        assert_eq!(schedule.batch_count(), 2);
        let ends: Vec<f64> = schedule.items.iter().map(|i| i.end_us()).collect();
        let starts: Vec<f64> = schedule.items.iter().map(|i| i.start_us()).collect();
        assert!(
            starts[1] >= ends[0] - 1e-9,
            "second batch waits for the first"
        );
    }

    #[test]
    fn mapped_makespan_at_least_original() {
        let p = params(HardwareParams::mixed(), 6, 25);
        let s = Scheduler::new(p.clone());
        let c = GraphState::new(20).edges(28).seed(2).build();
        let mapped = map_with(&p, MapperConfig::try_hybrid(1.0).expect("valid alpha"), &c);
        let t_orig = s.schedule_original(&c).makespan_us;
        let t_mapped = s.schedule_mapped(&mapped).makespan_us;
        assert!(t_mapped >= t_orig - 1e-6);
    }

    #[test]
    fn cz_accounting_matches_mapper() {
        let p = params(HardwareParams::gate_based(), 6, 25);
        let s = Scheduler::new(p.clone());
        let c = Qft::new(14).build();
        let mapped = map_with(&p, MapperConfig::gate_only(), &c);
        let schedule = s.schedule_mapped(&mapped);
        let original = s.schedule_original(&c);
        assert_eq!(schedule.cz_count() - original.cz_count(), mapped.delta_cz());
    }

    /// Regression: ASAP start times are not monotone in stream order, so
    /// the active-Rydberg list must not be pruned by the current item's
    /// start. Here gate C (later in the stream, on busy atoms) starts
    /// after gate A ends; pruning by C's start used to drop A, letting
    /// gate B (idle atoms, adjacent to A) start inside A's interval.
    #[test]
    fn restriction_survives_non_monotone_starts() {
        use na_circuit::{GateKind, Operation, Qubit};
        let p = params(HardwareParams::mixed(), 6, 4); // r_restr = 2.5
        let s = Scheduler::new(p);
        let cz = |a: u32, b: u32, sa: Site, sb: Site| MappedOp::Gate {
            op_index: 0,
            op: Operation::new(GateKind::Cz, vec![Qubit(a), Qubit(b)]).unwrap(),
            atoms: vec![AtomId(a), AtomId(b)],
            sites: vec![sa, sb],
        };
        let mut mapped = MappedCircuit::new(4, 4);
        // A: atoms 0,1 at (0,0),(1,0) — runs 0.0–0.2.
        mapped.ops.push(cz(0, 1, Site::new(0, 0), Site::new(1, 0)));
        // C: atoms 0,1 again, far away — t0 = 0.2 prunes A if pruning
        // uses the current start.
        mapped.ops.push(cz(0, 1, Site::new(5, 5), Site::new(4, 5)));
        // B: atoms 2,3 at (0,1),(1,1) — idle, so t0 = 0, but within
        // r_restr of A: must wait for A to end.
        mapped.ops.push(cz(2, 3, Site::new(0, 1), Site::new(1, 1)));
        let schedule = s.schedule_mapped(&mapped);
        assert_eq!(schedule.items[0].start_us(), 0.0);
        assert!(
            schedule.items[2].start_us() >= schedule.items[0].end_us() - 1e-12,
            "B must serialize behind A (got start {})",
            schedule.items[2].start_us()
        );
    }

    #[test]
    fn incremental_metrics_match_of() {
        let p = params(HardwareParams::mixed(), 6, 25);
        let c = GraphState::new(18).edges(28).seed(4).build();
        let mapped = map_with(&p, MapperConfig::try_hybrid(1.0).expect("valid alpha"), &c);
        let mut inc =
            IncrementalScheduler::new(&p, mapped.num_qubits, mapped.num_atoms, mapped.layout);
        for op in mapped.iter() {
            inc.push(op);
        }
        let (schedule, metrics) = inc.finish_with_metrics();
        assert_eq!(schedule, Scheduler::new(p.clone()).schedule_mapped(&mapped));
        // Bit-identical, not approximately equal: same terms, same order.
        assert_eq!(metrics, crate::ScheduleMetrics::of(&schedule, &p));
    }

    #[test]
    fn fused_map_into_matches_two_pass() {
        let p = params(HardwareParams::mixed(), 6, 25);
        let c = Qft::new(14).build();
        let mapper = HybridMapper::new(
            p.clone(),
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        )
        .expect("valid");

        // Fused: one pass, mapper streams into the scheduler while also
        // retaining the op stream for the two-pass replay.
        let mut mapped = MappedCircuit::new(c.num_qubits(), p.num_atoms);
        let mut inc = IncrementalScheduler::new(&p, c.num_qubits(), p.num_atoms, mapped.layout);
        struct Both<'a>(&'a mut MappedCircuit, &'a mut IncrementalScheduler);
        impl na_mapper::OpSink for Both<'_> {
            fn accept(&mut self, op: MappedOp) {
                self.1.push(&op);
                self.0.accept(op);
            }
        }
        mapper
            .map_into(&c, &mut Both(&mut mapped, &mut inc))
            .expect("mappable");
        let fused = inc.finish();

        // Legacy two-pass over the identical stream.
        let two_pass = Scheduler::new(p).schedule_mapped(&mapped);
        assert_eq!(
            fused, two_pass,
            "fused pass must be item-for-item identical"
        );
    }

    #[test]
    fn atoms_never_overlap_in_time() {
        let p = params(HardwareParams::mixed(), 6, 25);
        let s = Scheduler::new(p.clone());
        let c = GraphState::new(18).edges(30).seed(8).build();
        let mapped = map_with(&p, MapperConfig::try_hybrid(1.0).expect("valid alpha"), &c);
        let schedule = s.schedule_mapped(&mapped);
        // Per-atom intervals must be disjoint — dense busy-interval map
        // indexed by atom id (same idiom as the scheduler's hot path).
        let mut per_atom: Vec<Vec<(f64, f64)>> = vec![Vec::new(); schedule.num_atoms as usize];
        for item in &schedule.items {
            for a in item.atoms() {
                per_atom[a.index()].push((item.start_us(), item.end_us()));
            }
        }
        for (atom, intervals) in per_atom.iter_mut().enumerate() {
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in intervals.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-9, "atom {atom} double-booked: {w:?}");
            }
        }
    }

    /// Builds a random-but-valid shuttle stream from proptest choices:
    /// every move picks a currently stored atom and a currently free
    /// target trap (tracked against the identity layout), so the stream
    /// is feasible by construction. An occasional single-qubit gate seals
    /// the open run, exercising multiple flush waves against evolved
    /// occupancy.
    fn shuttle_stream(
        lattice: &Lattice,
        num_atoms: u32,
        choices: &[(usize, usize, u8)],
    ) -> MappedCircuit {
        use na_circuit::{GateKind, Operation, Qubit};
        let mut mapped = MappedCircuit::new(num_atoms, num_atoms);
        let mut pos: Vec<Site> = InitialLayout::Identity.place(lattice, num_atoms);
        let mut occupied = vec![false; lattice.num_sites()];
        for s in &pos {
            occupied[lattice.index(*s)] = true;
        }
        let mut free: Vec<Site> = (0..lattice.num_sites())
            .map(|i| lattice.site(i))
            .filter(|s| !occupied[lattice.index(*s)])
            .collect();
        for &(ai, fi, kind) in choices {
            if kind % 5 == 0 {
                mapped.ops.push(MappedOp::Gate {
                    op_index: 0,
                    op: Operation::new(GateKind::H, vec![Qubit(0)]).unwrap(),
                    atoms: vec![AtomId(0)],
                    sites: vec![pos[0]],
                });
                continue;
            }
            if free.is_empty() {
                break;
            }
            let a = ai % pos.len();
            let from = pos[a];
            let to = free.swap_remove(fi % free.len());
            occupied[lattice.index(from)] = false;
            occupied[lattice.index(to)] = true;
            free.push(from);
            pos[a] = to;
            mapped.ops.push(MappedOp::Shuttle {
                atom: AtomId(a as u32),
                from,
                to,
            });
        }
        mapped
    }

    /// The seed's flush partition: per wave, collect the occupied sites,
    /// then accept each pending move iff lowering the whole candidate
    /// batch passes the full `validate_program` (first move of a wave
    /// unchecked, exactly like the original `accepted.len() > 1` guard).
    fn reference_flush(
        lattice: &Lattice,
        occupancy: &mut [bool],
        run: &mut BatchRun,
        emitted: &mut Vec<Vec<BatchedMove>>,
    ) {
        for mut batch in std::mem::take(&mut run.batches) {
            while !batch.is_empty() {
                let occupied: Vec<Site> = (0..lattice.num_sites())
                    .map(|i| lattice.site(i))
                    .filter(|s| occupancy[lattice.index(*s)])
                    .collect();
                let mut accepted: Vec<BatchedMove> = Vec::new();
                let mut deferred: Vec<BatchedMove> = Vec::new();
                for mv in batch.drain(..) {
                    accepted.push(mv);
                    let ok = accepted.len() == 1
                        || crate::aod_program::validate_program(
                            &lower_batch(&accepted),
                            lattice,
                            &occupied,
                        )
                        .is_ok();
                    if !ok {
                        deferred.push(accepted.pop().unwrap());
                    }
                }
                for m in &accepted {
                    occupancy[lattice.index(m.from)] = false;
                    occupancy[lattice.index(m.to)] = true;
                }
                emitted.push(accepted);
                std::mem::swap(&mut batch, &mut deferred);
            }
        }
    }

    /// Schedules the stream through the production `IncrementalScheduler`
    /// (DeltaGrid partition) and through the seed's full-validation
    /// partition, asserting batch-for-batch identical transactions.
    fn assert_delta_matches_full_validation(
        lattice: Lattice,
        num_atoms: u32,
        choices: &[(usize, usize, u8)],
    ) {
        let mapped = shuttle_stream(&lattice, num_atoms, choices);
        let p = HardwareParams::shuttling()
            .to_builder()
            .lattice(lattice.side(), 3.0)
            .num_atoms(num_atoms)
            .build()
            .expect("valid");
        let mut inc = IncrementalScheduler::with_topology(
            &p,
            lattice,
            AodConstraints::default(),
            num_atoms,
            num_atoms,
            InitialLayout::Identity,
        );
        for op in mapped.iter() {
            inc.push(op);
        }
        let schedule = inc.finish();
        let actual: Vec<Vec<BatchedMove>> = schedule
            .items
            .iter()
            .filter_map(|i| match i {
                ScheduledItem::AodBatch { moves, .. } => Some(moves.clone()),
                _ => None,
            })
            .collect();

        let mut occupancy = vec![false; lattice.num_sites()];
        for s in InitialLayout::Identity.place(&lattice, num_atoms) {
            occupancy[lattice.index(s)] = true;
        }
        let mut run = BatchRun::new();
        let mut expected: Vec<Vec<BatchedMove>> = Vec::new();
        for op in mapped.iter() {
            if let MappedOp::Shuttle { atom, from, to } = op {
                run.push(BatchedMove {
                    atom: *atom,
                    from: *from,
                    to: *to,
                });
            } else {
                reference_flush(&lattice, &mut occupancy, &mut run, &mut expected);
            }
        }
        reference_flush(&lattice, &mut occupancy, &mut run, &mut expected);
        assert_eq!(
            actual, expected,
            "partitions must be batch-for-batch identical"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(24))]

        /// ISSUE equivalence property: DeltaGrid batch acceptance ≡ full
        /// `validate_program` replay on random move batches (square
        /// lattice). Sides up to 8 span both the ≤4-source-row delta
        /// path and the deep-grid full-validator fallback.
        #[test]
        fn delta_acceptance_matches_full_validation(
            side in 3u32..9,
            atoms_frac in 0.2f64..0.9,
            choices in proptest::collection::vec(
                (0usize..100_000, 0usize..100_000, 0u8..10),
                1..60,
            ),
        ) {
            let lattice = Lattice::new(side);
            let max = lattice.num_sites() as u32 - 1;
            let num_atoms = ((lattice.num_sites() as f64 * atoms_frac) as u32).clamp(1, max);
            assert_delta_matches_full_validation(lattice, num_atoms, &choices);
        }

        /// Same property over a zoned lattice: identity layout packs the
        /// storage band, so flush waves cross the gap rows.
        #[test]
        fn delta_acceptance_matches_full_validation_zoned(
            side in 4u32..9,
            zone in 1u32..3,
            gap in 1u32..3,
            atoms_frac in 0.2f64..0.9,
            choices in proptest::collection::vec(
                (0usize..100_000, 0usize..100_000, 0u8..10),
                1..60,
            ),
        ) {
            let lattice = Lattice::zoned(side, zone, gap).expect("valid banding");
            let max = lattice.num_sites() as u32 - 1;
            let num_atoms = ((lattice.num_sites() as f64 * atoms_frac) as u32).clamp(1, max);
            assert_delta_matches_full_validation(lattice, num_atoms, &choices);
        }
    }
}
