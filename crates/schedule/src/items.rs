//! Scheduled hardware operations with absolute start times.

use na_arch::Site;
use na_mapper::AtomId;
use serde::{Deserialize, Serialize};

/// One shuttle move inside an AOD batch, bound to its atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchedMove {
    /// The moved atom.
    pub atom: AtomId,
    /// Source site.
    pub from: Site,
    /// Target site.
    pub to: Site,
}

/// A scheduled hardware operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ScheduledItem {
    /// A single-qubit gate.
    SingleQubit {
        /// The addressed atom.
        atom: AtomId,
        /// Its trap site.
        site: Site,
        /// Start time in µs.
        start_us: f64,
        /// Duration in µs.
        duration_us: f64,
        /// Index of the originating circuit op, if any.
        op_index: Option<usize>,
    },
    /// A Rydberg `CᵐZ`-family gate (subject to the restriction radius).
    Rydberg {
        /// Participating atoms.
        atoms: Vec<AtomId>,
        /// Their trap sites at execution time.
        sites: Vec<Site>,
        /// Start time in µs.
        start_us: f64,
        /// Duration in µs.
        duration_us: f64,
        /// Index of the originating circuit op, if any.
        op_index: Option<usize>,
    },
    /// A routing SWAP as a composite block (3 CZ + 6 H on two atoms),
    /// subject to the restriction radius like any Rydberg operation.
    SwapComposite {
        /// The two swapped atoms.
        atoms: [AtomId; 2],
        /// Their trap sites.
        sites: [Site; 2],
        /// Start time in µs.
        start_us: f64,
        /// Duration in µs.
        duration_us: f64,
    },
    /// One AOD transaction: activation, simultaneous translation of all
    /// batched moves, deactivation.
    AodBatch {
        /// The batched moves.
        moves: Vec<BatchedMove>,
        /// Start time in µs.
        start_us: f64,
        /// Duration in µs.
        duration_us: f64,
    },
}

impl ScheduledItem {
    /// Start time in µs.
    pub fn start_us(&self) -> f64 {
        match self {
            ScheduledItem::SingleQubit { start_us, .. }
            | ScheduledItem::Rydberg { start_us, .. }
            | ScheduledItem::SwapComposite { start_us, .. }
            | ScheduledItem::AodBatch { start_us, .. } => *start_us,
        }
    }

    /// Duration in µs.
    pub fn duration_us(&self) -> f64 {
        match self {
            ScheduledItem::SingleQubit { duration_us, .. }
            | ScheduledItem::Rydberg { duration_us, .. }
            | ScheduledItem::SwapComposite { duration_us, .. }
            | ScheduledItem::AodBatch { duration_us, .. } => *duration_us,
        }
    }

    /// End time in µs.
    pub fn end_us(&self) -> f64 {
        self.start_us() + self.duration_us()
    }

    /// Participating atoms.
    pub fn atoms(&self) -> Vec<AtomId> {
        match self {
            ScheduledItem::SingleQubit { atom, .. } => vec![*atom],
            ScheduledItem::Rydberg { atoms, .. } => atoms.clone(),
            ScheduledItem::SwapComposite { atoms, .. } => atoms.to_vec(),
            ScheduledItem::AodBatch { moves, .. } => moves.iter().map(|m| m.atom).collect(),
        }
    }

    /// Returns `true` for Rydberg-type items (CZ family and SWAP
    /// composites) subject to the restriction constraint.
    pub fn is_rydberg(&self) -> bool {
        matches!(
            self,
            ScheduledItem::Rydberg { .. } | ScheduledItem::SwapComposite { .. }
        )
    }
}

/// A complete schedule: items with absolute times plus aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Scheduled items in start-time order of creation.
    pub items: Vec<ScheduledItem>,
    /// Total circuit execution time `T` in µs.
    pub makespan_us: f64,
    /// Circuit width (logical qubits).
    pub num_qubits: u32,
    /// Hardware atom count.
    pub num_atoms: u32,
}

impl Schedule {
    /// Number of scheduled items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` for an empty schedule.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of CZ-family entangling gates, counting each SWAP composite
    /// as 3 CZ (the paper's CZ accounting).
    pub fn cz_count(&self) -> usize {
        self.items
            .iter()
            .map(|item| match item {
                ScheduledItem::Rydberg { .. } => 1,
                ScheduledItem::SwapComposite { .. } => 3,
                _ => 0,
            })
            .sum()
    }

    /// Number of AOD transactions.
    pub fn batch_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, ScheduledItem::AodBatch { .. }))
            .count()
    }

    /// Total number of individual shuttle moves.
    pub fn move_count(&self) -> usize {
        self.items
            .iter()
            .map(|i| match i {
                ScheduledItem::AodBatch { moves, .. } => moves.len(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rydberg(start: f64, dur: f64) -> ScheduledItem {
        ScheduledItem::Rydberg {
            atoms: vec![AtomId(0), AtomId(1)],
            sites: vec![Site::new(0, 0), Site::new(1, 0)],
            start_us: start,
            duration_us: dur,
            op_index: Some(0),
        }
    }

    #[test]
    fn timing_accessors() {
        let item = rydberg(3.0, 0.2);
        assert_eq!(item.start_us(), 3.0);
        assert_eq!(item.end_us(), 3.2);
        assert!(item.is_rydberg());
    }

    #[test]
    fn cz_counting_includes_swaps() {
        let schedule = Schedule {
            items: vec![
                rydberg(0.0, 0.2),
                ScheduledItem::SwapComposite {
                    atoms: [AtomId(0), AtomId(1)],
                    sites: [Site::new(0, 0), Site::new(1, 0)],
                    start_us: 1.0,
                    duration_us: 2.6,
                },
            ],
            makespan_us: 3.6,
            num_qubits: 2,
            num_atoms: 4,
        };
        assert_eq!(schedule.cz_count(), 4);
    }

    #[test]
    fn batch_atoms_listed() {
        let item = ScheduledItem::AodBatch {
            moves: vec![
                BatchedMove {
                    atom: AtomId(3),
                    from: Site::new(0, 0),
                    to: Site::new(0, 2),
                },
                BatchedMove {
                    atom: AtomId(5),
                    from: Site::new(2, 0),
                    to: Site::new(2, 2),
                },
            ],
            start_us: 0.0,
            duration_us: 50.0,
        };
        assert_eq!(item.atoms(), vec![AtomId(3), AtomId(5)]);
        assert!(!item.is_rydberg());
    }
}
