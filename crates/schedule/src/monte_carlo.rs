//! Monte-Carlo cross-validation of the Eq. (1) success probability.
//!
//! [`ScheduleMetrics`](crate::metrics::ScheduleMetrics) computes
//! `P = exp(−t_idle/T_eff)·Π F_O` analytically in log₁₀ space. This
//! module estimates the same quantity by sampling: each operation
//! succeeds with probability `F_O` and the idle decoherence survives with
//! probability `exp(−t_idle/T_eff)`; a run succeeds when everything does.
//! Agreement between the estimator and the closed form validates the
//! metric bookkeeping (fidelity attribution per item kind, per-move
//! shuttle costs, idle accounting) end to end.
//!
//! Only meaningful when `P` is large enough to sample (small circuits);
//! for 200-qubit workloads `P` underflows any feasible trial count and
//! the analytic log-space value is the only usable form.

use na_arch::HardwareParams;

use crate::items::{Schedule, ScheduledItem};

/// A tiny deterministic PRNG (splitmix64) so the crate stays free of a
/// `rand` dependency outside dev-tests.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Estimates the approximate success probability of a schedule by
/// sampling `trials` runs with the given `seed`.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::Circuit;
/// use na_schedule::{monte_carlo::estimate_success, ScheduleMetrics, Scheduler};
/// let params = HardwareParams::shuttling()
///     .to_builder().lattice(4, 3.0).num_atoms(8).build()?;
/// let mut c = Circuit::new(3);
/// c.h(0).cz(0, 1).cz(1, 2);
/// let schedule = Scheduler::new(params.clone()).schedule_original(&c);
/// let analytic = ScheduleMetrics::of(&schedule, &params).success_probability();
/// let sampled = estimate_success(&schedule, &params, 20_000, 1);
/// assert!((analytic - sampled).abs() < 0.02);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_success(
    schedule: &Schedule,
    params: &HardwareParams,
    trials: u32,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    // Per-item success probabilities (mirrors ScheduleMetrics::of).
    let mut probs: Vec<f64> = Vec::with_capacity(schedule.len() + 1);
    let mut busy_us = 0.0;
    for item in &schedule.items {
        busy_us += item.duration_us();
        probs.push(match item {
            ScheduledItem::SingleQubit { .. } => params.f_single,
            ScheduledItem::Rydberg { atoms, .. } => params.cz_family_fidelity(atoms.len()),
            ScheduledItem::SwapComposite { .. } => params.swap_fidelity(),
            ScheduledItem::AodBatch { moves, .. } => params.f_shuttle.powi(moves.len() as i32),
        });
    }
    let idle_us = (f64::from(schedule.num_qubits) * schedule.makespan_us - busy_us).max(0.0);
    probs.push((-idle_us / params.t_eff_us()).exp());

    let mut rng = SplitMix64(seed.wrapping_add(0x5851_F42D_4C95_7F2D));
    let mut successes = 0u32;
    'trial: for _ in 0..trials {
        for &p in &probs {
            if rng.next_f64() >= p {
                continue 'trial;
            }
        }
        successes += 1;
    }
    f64::from(successes) / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ScheduleMetrics;
    use crate::scheduler::Scheduler;
    use na_circuit::generators::GraphState;
    use na_mapper::{HybridMapper, MapperConfig};

    #[test]
    fn matches_analytic_value_on_mapped_circuit() {
        let params = HardwareParams::shuttling()
            .to_builder()
            .lattice(5, 3.0)
            .num_atoms(14)
            .build()
            .expect("valid");
        let circuit = GraphState::new(12).edges(15).seed(9).build();
        let mapped = HybridMapper::new(params.clone(), MapperConfig::shuttle_only())
            .expect("valid")
            .map(&circuit)
            .expect("mappable")
            .mapped;
        let schedule = Scheduler::new(params.clone()).schedule_mapped(&mapped);
        let analytic = ScheduleMetrics::of(&schedule, &params).success_probability();
        let sampled = estimate_success(&schedule, &params, 40_000, 7);
        // Bernoulli std-dev at 40k trials is below 0.003.
        assert!(
            (analytic - sampled).abs() < 0.02,
            "analytic {analytic} vs sampled {sampled}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(4, 3.0)
            .num_atoms(8)
            .build()
            .expect("valid");
        let mut c = na_circuit::Circuit::new(3);
        c.h(0).cz(0, 1).cz(1, 2);
        let schedule = Scheduler::new(params.clone()).schedule_original(&c);
        let a = estimate_success(&schedule, &params, 5_000, 3);
        let b = estimate_success(&schedule, &params, 5_000, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_hardware_always_succeeds() {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(4, 3.0)
            .num_atoms(8)
            .f_cz(1.0)
            .f_single(1.0)
            .f_shuttle(1.0)
            .coherence(1e30, 1e30)
            .build()
            .expect("valid");
        let mut c = na_circuit::Circuit::new(2);
        c.h(0).cz(0, 1);
        let schedule = Scheduler::new(params.clone()).schedule_original(&c);
        assert_eq!(estimate_success(&schedule, &params, 1_000, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(4, 3.0)
            .num_atoms(8)
            .build()
            .expect("valid");
        let schedule =
            Scheduler::new(params.clone()).schedule_original(&na_circuit::Circuit::new(1));
        estimate_success(&schedule, &params, 0, 0);
    }
}
