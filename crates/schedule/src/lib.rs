//! Scheduling and fidelity metrics for mapped neutral-atom circuits.
//!
//! This crate implements step (5) of the paper's mapping process and the
//! evaluation metrics of §4.1:
//!
//! * **ASAP list scheduling** of the mapped operation stream with the
//!   NA-specific *restriction* constraint: Rydberg gates overlapping in
//!   time keep all their atoms at least `r_restr` apart ([`scheduler`]),
//! * **AOD batching**: consecutive compatible shuttle moves merge into a
//!   single activate–translate–deactivate transaction ([`scheduler`]),
//! * **metrics**: the approximate success probability of Eq. (1) in
//!   log-space, and the Table 1a quantities `ΔCZ`, `ΔT` and
//!   `δF = −log₁₀(P_mapped/P_original)` ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use na_arch::HardwareParams;
//! use na_circuit::generators::GraphState;
//! use na_mapper::{HybridMapper, MapperConfig};
//! use na_schedule::Scheduler;
//!
//! let params = HardwareParams::mixed()
//!     .to_builder()
//!     .lattice(5, 3.0)
//!     .num_atoms(12)
//!     .build()?;
//! let circuit = GraphState::new(10).edges(13).seed(5).build();
//! let mapper = HybridMapper::new(params.clone(), MapperConfig::default())?;
//! let outcome = mapper.map(&circuit)?;
//!
//! let scheduler = Scheduler::new(params);
//! let report = scheduler.compare(&circuit, &outcome.mapped);
//! assert!(report.delta_t_us >= 0.0);
//! assert!(report.delta_f >= -1e-9); // mapping can only lose fidelity
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aod_program;
pub mod error;
pub mod export;
pub mod items;
pub mod metrics;
pub mod monte_carlo;
pub mod restrict;
pub mod scheduler;

pub use aod_program::{
    lower_batch, validate_program, validate_program_with, AodInstruction, AodProgram,
};
pub use error::ScheduleError;
pub use items::{Schedule, ScheduledItem};
pub use metrics::{ComparisonReport, ScheduleMetrics};
pub use restrict::RestrictIndex;
pub use scheduler::{IncrementalScheduler, Scheduler};
