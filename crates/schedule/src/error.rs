//! Scheduling error types.

use std::error::Error;
use std::fmt;

use crate::aod_program::AodProgramError;

/// Errors raised while scheduling or lowering a mapped stream.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// An AOD batch lowered to an instruction stream that violates the
    /// shuttling protocol when replayed against the lattice occupancy.
    InvalidAodBatch {
        /// Index of the offending batch among the schedule's AOD
        /// transactions (0-based, schedule order).
        batch_index: usize,
        /// The batch's scheduled start time in µs.
        start_us: f64,
        /// The violated constraint.
        source: AodProgramError,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InvalidAodBatch {
                batch_index,
                start_us,
                source,
            } => write!(
                f,
                "AOD batch {batch_index} (t = {start_us:.3} µs) failed validation: {source}"
            ),
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::InvalidAodBatch { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_chain_reaches_the_protocol_violation() {
        let e = ScheduleError::InvalidAodBatch {
            batch_index: 2,
            start_us: 7.5,
            source: AodProgramError::LineCrossing,
        };
        assert!(e.to_string().contains("batch 2"));
        let source = e.source().expect("has a source");
        assert!(source.to_string().contains("cross"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScheduleError>();
    }
}
