//! Backend targets: the [`Target`] trait and its concrete
//! implementations.
//!
//! A *target* describes everything the compiler needs to know about a
//! backend: the trap topology ([`Lattice`]), the physical parameter set
//! ([`HardwareParams`] — radii, fidelities, timings), the AOD constraint
//! set ([`AodConstraints`]) and the native gate set ([`NativeGateSet`]).
//! The paper's evaluation machine is one such target
//! (`HardwareParams` itself implements [`Target`] with a square
//! lattice); [`ZonedTarget`] adds the zoned storage/interaction layout
//! of banded neutral-atom machines.
//!
//! Consumers resolve a target once into a concrete [`TargetSpec`]
//! snapshot at construction time (`Compiler::for_target` in
//! `na-pipeline` does this), so trait objects never sit on hot paths.
//!
//! # Example
//!
//! ```
//! use na_arch::{HardwareParams, Target, ZonedTarget};
//!
//! // The Table 1c mixed preset as a square-lattice target.
//! let square = HardwareParams::mixed();
//! assert_eq!(square.lattice().num_sites(), 225);
//!
//! // The same physics on a zoned layout (2 trap rows per band, 1 lane):
//! // fewer traps, so the atom count must shrink.
//! let params = HardwareParams::mixed()
//!     .to_builder()
//!     .lattice(9, 3.0)
//!     .num_atoms(30)
//!     .build()?;
//! let zoned = ZonedTarget::new(params, 2, 1)?;
//! assert_eq!(zoned.lattice().num_sites(), 6 * 9);
//! assert!(zoned.id().starts_with("zoned"));
//! # Ok::<(), na_arch::ArchError>(())
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::adjacency::NeighborTable;
use crate::error::ArchError;
use crate::lattice::Lattice;
use crate::params::HardwareParams;

/// AOD constraint set of a backend: limits the scheduler's transaction
/// batching beyond the universal shuttling protocol (which the AOD
/// program validator always enforces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AodConstraints {
    /// Maximum number of moves one AOD transaction may carry, or `None`
    /// when only the protocol validator bounds batching. Real deflector
    /// drivers cap the number of simultaneously active tones per axis;
    /// the scheduler splits larger batches.
    pub max_batch_moves: Option<usize>,
}

impl AodConstraints {
    /// Constraints capping transactions at `max_batch_moves` moves.
    pub fn capped(max_batch_moves: usize) -> Self {
        AodConstraints {
            max_batch_moves: Some(max_batch_moves),
        }
    }
}

/// Native gate set of a backend.
///
/// The mapper combines this with the interaction geometry: the largest
/// routable `CᵐZ` arity is the minimum of [`NativeGateSet::max_rydberg_arity`]
/// and the geometric cluster capacity of the topology at `r_int`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NativeGateSet {
    /// Largest `CᵐZ`-family arity the control electronics can drive
    /// (`usize::MAX` = geometry-limited only).
    pub max_rydberg_arity: usize,
    /// Whether the backend can shuttle atoms at all. Shuttle-capable
    /// mapping modes are rejected at compiler-build time on targets
    /// without it.
    pub supports_shuttling: bool,
}

impl Default for NativeGateSet {
    /// Geometry-limited `CᵐZ` family with shuttling — the paper's model.
    fn default() -> Self {
        NativeGateSet {
            max_rydberg_arity: usize::MAX,
            supports_shuttling: true,
        }
    }
}

impl NativeGateSet {
    /// A `CᵐZ` family capped at `max_arity` operands, with shuttling.
    pub fn cz_family(max_arity: usize) -> Self {
        NativeGateSet {
            max_rydberg_arity: max_arity,
            supports_shuttling: true,
        }
    }

    /// A gate-only backend (no AOD shuttling hardware).
    pub fn without_shuttling(mut self) -> Self {
        self.supports_shuttling = false;
        self
    }
}

/// A compiler backend: trap topology, physics, AOD constraints and
/// native gates.
///
/// Implementations should be cheap to query; consumers snapshot the
/// target into a [`TargetSpec`] once per compiler construction via
/// [`Target::spec`].
pub trait Target: fmt::Debug {
    /// Stable backend identifier, e.g. `"square/mixed"`.
    fn id(&self) -> String;

    /// The physical parameter set (radii, fidelities, timings,
    /// coherence).
    fn params(&self) -> &HardwareParams;

    /// The trap topology.
    ///
    /// May panic on an invalid description (e.g. a zero lattice side);
    /// call [`Target::validate`] first when handling untrusted input.
    fn lattice(&self) -> Lattice;

    /// The AOD constraint set (defaults to protocol-only constraints).
    fn aod_constraints(&self) -> AodConstraints {
        AodConstraints::default()
    }

    /// The native gate set (defaults to the geometry-limited `CᵐZ`
    /// family with shuttling).
    fn native_gates(&self) -> NativeGateSet {
        NativeGateSet::default()
    }

    /// Validates the target description.
    ///
    /// # Errors
    ///
    /// Propagates [`HardwareParams::validate`] failures and returns
    /// [`ArchError::TooManyAtoms`] when the topology holds fewer than
    /// `num_atoms + 1` traps (at least one coordinate must stay free).
    fn validate(&self) -> Result<(), ArchError> {
        self.params().validate()?;
        let sites = self.lattice().num_sites() as u32;
        if self.params().num_atoms >= sites {
            return Err(ArchError::TooManyAtoms {
                atoms: self.params().num_atoms,
                sites,
            });
        }
        Ok(())
    }

    /// Resolves the target into a concrete snapshot, including the CSR
    /// interaction adjacency (`r_int` neighbor table) the routing hot
    /// path consumes.
    fn spec(&self) -> TargetSpec {
        let lattice = self.lattice();
        let interaction_table = NeighborTable::for_radius(&lattice, self.params().r_int);
        let region_graph = interaction_table.regions().clone();
        TargetSpec {
            id: self.id(),
            params: self.params().clone(),
            lattice,
            aod: self.aod_constraints(),
            gates: self.native_gates(),
            interaction_table,
            region_graph,
        }
    }
}

/// A resolved, concrete snapshot of a [`Target`] — what the compiler
/// actually carries after construction. Itself a [`Target`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetSpec {
    /// Backend identifier.
    pub id: String,
    /// Physical parameter set.
    pub params: HardwareParams,
    /// Trap topology.
    pub lattice: Lattice,
    /// AOD constraint set.
    pub aod: AodConstraints,
    /// Native gate set.
    pub gates: NativeGateSet,
    /// CSR adjacency of the topology at `params.r_int` — resolved once
    /// here and consumed by `HybridMapper::for_target`, so the routing
    /// hot path never recomputes `hood.around` geometry (see
    /// [`NeighborTable`]). Derived data: a pure function of
    /// `(lattice, params.r_int)`, rebuilt (never trusted) by
    /// [`TargetSpec::resolve`] when a spec is assembled from parts.
    pub interaction_table: NeighborTable,
    /// Coarse R×R clustering of the interaction table — the
    /// region-level adjacency graph and per-region site slices the
    /// routing core uses for coarse-to-fine distance queries and
    /// ring-ordered scans on mega-scale lattices (see
    /// [`RegionGrid`](crate::adjacency::RegionGrid)). Like the fine
    /// table, derived data: a pure function of
    /// `(lattice, params.r_int)`.
    pub region_graph: crate::adjacency::RegionGrid,
}

impl TargetSpec {
    /// Rebuilds a spec from its independent fields, deriving the CSR
    /// interaction table — the constructor for callers assembling a
    /// spec by hand (e.g. the JSON job layer).
    pub fn resolve(
        id: String,
        params: HardwareParams,
        lattice: Lattice,
        aod: AodConstraints,
        gates: NativeGateSet,
    ) -> Self {
        let interaction_table = NeighborTable::for_radius(&lattice, params.r_int);
        let region_graph = interaction_table.regions().clone();
        TargetSpec {
            id,
            params,
            lattice,
            aod,
            gates,
            interaction_table,
            region_graph,
        }
    }
}

impl Target for TargetSpec {
    fn id(&self) -> String {
        self.id.clone()
    }

    fn params(&self) -> &HardwareParams {
        &self.params
    }

    fn lattice(&self) -> Lattice {
        self.lattice
    }

    fn aod_constraints(&self) -> AodConstraints {
        self.aod
    }

    fn native_gates(&self) -> NativeGateSet {
        self.gates
    }

    fn spec(&self) -> TargetSpec {
        self.clone()
    }
}

/// The paper's machine model: a [`HardwareParams`] set on the full
/// square lattice, protocol-only AOD constraints, geometry-limited
/// gates.
impl Target for HardwareParams {
    fn id(&self) -> String {
        format!("square/{}", self.name)
    }

    fn params(&self) -> &HardwareParams {
        self
    }

    fn lattice(&self) -> Lattice {
        Lattice::new(self.lattice_side)
    }
}

/// A zoned storage/interaction backend: trap-row bands of `zone_rows`
/// rows separated by `gap_rows` empty shuttling lanes, sharing the
/// [`HardwareParams`] physics model.
///
/// Construction validates the whole description, including that the
/// (reduced) trap count still exceeds the atom count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZonedTarget {
    params: HardwareParams,
    zone_rows: u32,
    gap_rows: u32,
}

impl ZonedTarget {
    /// Creates a zoned target.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] for a degenerate banding
    /// (zero rows) and propagates [`Target::validate`] failures —
    /// notably [`ArchError::TooManyAtoms`] when the atoms no longer fit
    /// the reduced trap count.
    pub fn new(params: HardwareParams, zone_rows: u32, gap_rows: u32) -> Result<Self, ArchError> {
        // Reject degenerate banding before `lattice()` can panic.
        Lattice::zoned(params.lattice_side.max(1), zone_rows, gap_rows)?;
        let target = ZonedTarget {
            params,
            zone_rows,
            gap_rows,
        };
        target.validate()?;
        Ok(target)
    }

    /// The default zoning: bands of two trap rows separated by one lane
    /// (interaction partners above/below within the band, a free lane
    /// for AOD transit between bands).
    ///
    /// # Errors
    ///
    /// Same contract as [`ZonedTarget::new`].
    pub fn default_zoning(params: HardwareParams) -> Result<Self, ArchError> {
        ZonedTarget::new(params, 2, 1)
    }

    /// Trap rows per band.
    pub fn zone_rows(&self) -> u32 {
        self.zone_rows
    }

    /// Lane rows between bands.
    pub fn gap_rows(&self) -> u32 {
        self.gap_rows
    }
}

impl Target for ZonedTarget {
    fn id(&self) -> String {
        format!(
            "zoned{}+{}/{}",
            self.zone_rows, self.gap_rows, self.params.name
        )
    }

    fn params(&self) -> &HardwareParams {
        &self.params
    }

    fn lattice(&self) -> Lattice {
        Lattice::zoned(self.params.lattice_side, self.zone_rows, self.gap_rows)
            .expect("validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mixed(side: u32, atoms: u32) -> HardwareParams {
        HardwareParams::mixed()
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .build()
            .expect("valid")
    }

    #[test]
    fn hardware_params_is_a_square_target() {
        let p = HardwareParams::mixed();
        assert_eq!(p.id(), "square/mixed");
        assert_eq!(p.lattice(), Lattice::new(15));
        assert!(p.validate().is_ok());
        let spec = p.spec();
        assert_eq!(spec.params, p);
        assert_eq!(spec.aod, AodConstraints::default());
        assert_eq!(spec.gates, NativeGateSet::default());
        // The spec is itself a target and re-specs identically.
        assert_eq!(Target::spec(&spec), spec);
    }

    #[test]
    fn zoned_target_reduces_trap_count() {
        let t = ZonedTarget::new(small_mixed(9, 30), 2, 1).expect("fits");
        assert_eq!(t.lattice().num_sites(), 6 * 9);
        assert_eq!(t.id(), "zoned2+1/mixed");
        assert_eq!((t.zone_rows(), t.gap_rows()), (2, 1));
    }

    #[test]
    fn zoned_target_rejects_overfull_presets() {
        // 200 atoms fit 15x15 = 225 square traps but not the 150 zoned
        // ones.
        let err = ZonedTarget::new(HardwareParams::mixed(), 2, 1).unwrap_err();
        assert!(matches!(err, ArchError::TooManyAtoms { sites: 150, .. }));
    }

    #[test]
    fn zoned_target_rejects_degenerate_bands() {
        let p = small_mixed(9, 30);
        assert!(ZonedTarget::new(p.clone(), 0, 1).is_err());
        assert!(ZonedTarget::new(p, 2, 0).is_err());
    }

    #[test]
    fn validate_rejects_bad_params_before_topology() {
        let mut p = small_mixed(9, 30);
        p.r_int = -1.0;
        let t = ZonedTarget {
            params: p,
            zone_rows: 2,
            gap_rows: 1,
        };
        assert!(matches!(
            t.validate(),
            Err(ArchError::InvalidParameter { name: "r_int", .. })
        ));
    }

    #[test]
    fn native_gate_set_builders() {
        let g = NativeGateSet::cz_family(4);
        assert_eq!(g.max_rydberg_arity, 4);
        assert!(g.supports_shuttling);
        assert!(!g.without_shuttling().supports_shuttling);
        assert_eq!(AodConstraints::capped(8).max_batch_moves, Some(8));
    }
}
