//! Trap coordinates on the square SLM lattice.
//!
//! Following the paper we assume all static traps lie on a regular square
//! lattice with lattice constant `d`. A [`Site`] stores integer lattice
//! coordinates; all geometric quantities (distances, radii) are expressed
//! in units of `d` so that the Table 1c radii (`r_int = 2, 2.5, 4.5`)
//! can be used directly. Conversion to physical micrometres only happens
//! when computing shuttle times (see [`crate::params::HardwareParams`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An integer coordinate on the square trap lattice, in units of the
/// lattice constant `d`.
///
/// Signed coordinates are used so that displacement arithmetic
/// (`b - a`) cannot underflow; the [`crate::Lattice`] validates bounds.
///
/// # Example
///
/// ```
/// use na_arch::Site;
/// let a = Site::new(1, 1);
/// let b = Site::new(4, 5);
/// assert_eq!(a.distance(b), 5.0); // 3-4-5 triangle, in units of d
/// assert_eq!(a.rectilinear_distance(b), 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Site {
    /// Column coordinate (x), in units of `d`.
    pub x: i32,
    /// Row coordinate (y), in units of `d`.
    pub y: i32,
}

impl Site {
    /// Creates a site at lattice coordinates `(x, y)`.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Site { x, y }
    }

    /// Squared Euclidean distance to `other`, in units of `d²`.
    ///
    /// Exact integer arithmetic; prefer this over [`Site::distance`] for
    /// comparisons against a radius (compare with `r * r`).
    #[inline]
    pub fn distance_sq(self, other: Site) -> i64 {
        let dx = i64::from(self.x - other.x);
        let dy = i64::from(self.y - other.y);
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`, in units of `d`.
    #[inline]
    pub fn distance(self, other: Site) -> f64 {
        (self.distance_sq(other) as f64).sqrt()
    }

    /// Rectangular (Manhattan) distance to `other`, in units of `d`.
    ///
    /// This is the shuttling distance `s(M)` of the paper's Eq. (5): AOD
    /// moves decompose into an x-sweep and a y-sweep of the deflector
    /// coordinates.
    #[inline]
    pub fn rectilinear_distance(self, other: Site) -> f64 {
        (i64::from((self.x - other.x).abs()) + i64::from((self.y - other.y).abs())) as f64
    }

    /// Chebyshev (max-axis) distance to `other`, in units of `d`.
    #[inline]
    pub fn chebyshev_distance(self, other: Site) -> i32 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Returns `true` if `other` is within Euclidean radius `r` (units of
    /// `d`) of `self`.
    ///
    /// Uses a small epsilon so that radii specified exactly at a lattice
    /// distance (e.g. `r_int = 2` covering sites two steps away) include
    /// the boundary despite floating-point rounding.
    #[inline]
    pub fn within(self, other: Site, r: f64) -> bool {
        self.distance_sq(other) <= Site::within_threshold_sq(r)
    }

    /// The largest squared lattice distance still counted as "within
    /// radius `r`" by [`Site::within`] — the integer fast path for hot
    /// range checks: hoist this once per loop and compare
    /// [`Site::distance_sq`] against it. Decision-identical to `within`
    /// (same epsilon'd boundary), with no per-pair float math.
    #[inline]
    pub fn within_threshold_sq(r: f64) -> i64 {
        const EPS: f64 = 1e-9;
        // Integer squared distances convert to f64 exactly (they are far
        // below 2^53), so `d² ≤ ⌊r² + ε⌋  ⟺  (d² as f64) ≤ r² + ε`.
        (r * r + EPS).floor() as i64
    }

    /// Component-wise displacement `other - self`.
    #[inline]
    pub fn delta(self, other: Site) -> (i32, i32) {
        (other.x - self.x, other.y - self.y)
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Site {
    fn from((x, y): (i32, i32)) -> Self {
        Site::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Site::new(0, 0);
        assert_eq!(a.distance(Site::new(3, 4)), 5.0);
        assert_eq!(a.distance(Site::new(0, 0)), 0.0);
        assert!((a.distance(Site::new(1, 1)) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn within_includes_boundary() {
        let a = Site::new(0, 0);
        // r_int = 2d must include the site exactly 2 steps away (Fig. 1a).
        assert!(a.within(Site::new(2, 0), 2.0));
        assert!(a.within(Site::new(1, 1), std::f64::consts::SQRT_2));
        assert!(!a.within(Site::new(2, 1), 2.0));
    }

    #[test]
    fn rectilinear_distance_matches_manhattan() {
        let a = Site::new(-1, 2);
        let b = Site::new(3, -1);
        assert_eq!(a.rectilinear_distance(b), 7.0);
    }

    #[test]
    fn delta_roundtrip() {
        let a = Site::new(2, 5);
        let b = Site::new(-1, 7);
        let (dx, dy) = a.delta(b);
        assert_eq!(Site::new(a.x + dx, a.y + dy), b);
    }

    #[test]
    fn display_format() {
        assert_eq!(Site::new(3, -2).to_string(), "(3, -2)");
    }

    proptest! {
        #[test]
        fn distance_symmetric(ax in -100i32..100, ay in -100i32..100,
                              bx in -100i32..100, by in -100i32..100) {
            let a = Site::new(ax, ay);
            let b = Site::new(bx, by);
            prop_assert_eq!(a.distance_sq(b), b.distance_sq(a));
        }

        #[test]
        fn triangle_inequality(ax in -50i32..50, ay in -50i32..50,
                               bx in -50i32..50, by in -50i32..50,
                               cx in -50i32..50, cy in -50i32..50) {
            let a = Site::new(ax, ay);
            let b = Site::new(bx, by);
            let c = Site::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }

        #[test]
        fn chebyshev_lower_bounds_euclidean(ax in -50i32..50, ay in -50i32..50,
                                            bx in -50i32..50, by in -50i32..50) {
            let a = Site::new(ax, ay);
            let b = Site::new(bx, by);
            prop_assert!(f64::from(a.chebyshev_distance(b)) <= a.distance(b) + 1e-9);
            prop_assert!(a.distance(b) <= a.rectilinear_distance(b) + 1e-9);
        }

        /// The integer threshold is decision-identical to the float
        /// comparison `within` used before the fast path existed.
        #[test]
        fn threshold_matches_float_within(ax in -50i32..50, ay in -50i32..50,
                                          bx in -50i32..50, by in -50i32..50,
                                          r in 0.1f64..10.0) {
            const EPS: f64 = 1e-9;
            let a = Site::new(ax, ay);
            let b = Site::new(bx, by);
            let float_decision = (a.distance_sq(b) as f64) <= r * r + EPS;
            prop_assert_eq!(a.within(b, r), float_decision);
            prop_assert_eq!(
                a.distance_sq(b) <= Site::within_threshold_sq(r),
                float_decision
            );
        }
    }
}
