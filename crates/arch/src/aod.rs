//! 2D acousto-optic deflector (AOD) shuttling model.
//!
//! Atoms are shuttled by loading them from static SLM traps into the
//! crossing points of AOD rows and columns, translating those rows and
//! columns, and storing the atoms back (paper §2.1, Fig. 1b). Two
//! constraints govern which moves can share one AOD *transaction*
//! (activate → move → deactivate):
//!
//! 1. **No crossing** — AOD rows and columns keep their relative order at
//!    all times. Two moves can only execute simultaneously if the order of
//!    their source x-coordinates equals the order of their target
//!    x-coordinates (and likewise for y). Two atoms sharing a column must
//!    keep sharing it (a single column cannot split), and distinct columns
//!    cannot merge onto one coordinate.
//! 2. **Ghost spots** — every row/column intersection is a potential trap.
//!    Following Example 2 of the paper, qubits are loaded sequentially with
//!    small offset moves so that ghost spots only ever hover over empty
//!    inter-qubit regions; the model therefore allows arbitrary subsets of
//!    compatible moves to be loaded within a single activation window.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::coord::Site;
use crate::params::HardwareParams;

/// Index of an AOD row (a horizontal deflection line at some y).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AodRow(pub i32);

/// Index of an AOD column (a vertical deflection line at some x).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AodColumn(pub i32);

/// A single shuttle move of one atom between two trap coordinates.
///
/// # Example
///
/// ```
/// use na_arch::{Move, Site};
/// let m = Move::new(Site::new(0, 0), Site::new(3, 1));
/// assert_eq!(m.rectilinear_distance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Move {
    /// Source trap coordinate.
    pub from: Site,
    /// Target trap coordinate.
    pub to: Site,
}

impl Move {
    /// Creates a move from `from` to `to`.
    pub const fn new(from: Site, to: Site) -> Self {
        Move { from, to }
    }

    /// Rectangular shuttling distance `s(M)` in lattice units — AOD
    /// translations decompose into an x-sweep and a y-sweep.
    #[inline]
    pub fn rectilinear_distance(&self) -> f64 {
        self.from.rectilinear_distance(self.to)
    }

    /// Returns `true` if the move is a no-op (`from == to`).
    #[inline]
    pub fn is_trivial(&self) -> bool {
        self.from == self.to
    }

    /// Duration of this move as a standalone AOD transaction
    /// (activate + translate + deactivate), in µs.
    #[inline]
    pub fn standalone_time_us(&self, params: &HardwareParams) -> f64 {
        params.shuttle_time_us(self.rectilinear_distance())
    }
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.from, self.to)
    }
}

fn axis_compatible(a_from: i32, a_to: i32, b_from: i32, b_to: i32) -> bool {
    // Relative order of the two AOD lines must be identical before and
    // after the translation; shared lines must stay shared.
    a_from.cmp(&b_from) == a_to.cmp(&b_to)
        // A shared line translates both atoms by the same amount.
        && (a_from != b_from || (a_to - a_from) == (b_to - b_from))
}

/// Returns `true` if two moves can be *fully* executed within a single AOD
/// transaction: loaded in the same activation window and translated
/// simultaneously without any row/column crossing.
///
/// This is the "parallel loading & shuttle" case of the paper's ΔT model
/// (§3.3.2).
pub fn moves_fully_parallel(a: &Move, b: &Move) -> bool {
    a.from != b.from
        && a.to != b.to
        && axis_compatible(a.from.x, a.to.x, b.from.x, b.to.x)
        && axis_compatible(a.from.y, a.to.y, b.from.y, b.to.y)
}

/// Returns `true` if two moves can execute in one AOD transaction *and*
/// do not hand a trap site over to each other (a move filling a site the
/// other vacates needs strict sequencing even though the AOD grid could
/// carry both).
pub fn moves_batchable(a: &Move, b: &Move) -> bool {
    moves_fully_parallel(a, b) && a.to != b.from && a.from != b.to
}

/// Returns `true` if two moves can at least share the loading phase (the
/// source coordinates fit one non-degenerate AOD grid), even if their
/// translations conflict.
///
/// This is the "parallel loading" case of the paper's ΔT model: the batch
/// still saves one activation/deactivation pair.
pub fn loads_parallel(a: &Move, b: &Move) -> bool {
    a.from != b.from
}

/// A set of pairwise-compatible moves executing as one AOD transaction.
///
/// Invariant: all contained moves are pairwise [`moves_fully_parallel`].
///
/// # Example
///
/// ```
/// use na_arch::{HardwareParams, Move, MoveBatch, Site};
/// let mut batch = MoveBatch::new();
/// assert!(batch.try_push(Move::new(Site::new(0, 0), Site::new(0, 2))));
/// assert!(batch.try_push(Move::new(Site::new(3, 0), Site::new(3, 2))));
/// // Crossing move is rejected:
/// assert!(!batch.try_push(Move::new(Site::new(5, 0), Site::new(1, 2))));
/// assert_eq!(batch.len(), 2);
/// let hw = HardwareParams::shuttling();
/// assert!(batch.duration_us(&hw) > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MoveBatch {
    moves: Vec<Move>,
}

impl MoveBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        MoveBatch::default()
    }

    /// Number of moves in the batch.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Returns `true` if the batch contains no moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// The moves in insertion order.
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// Returns `true` if `m` is compatible with every move already in the
    /// batch.
    pub fn accepts(&self, m: &Move) -> bool {
        self.moves
            .iter()
            .all(|existing| moves_fully_parallel(existing, m))
    }

    /// Adds `m` if compatible with the whole batch; returns whether the
    /// move was added.
    pub fn try_push(&mut self, m: Move) -> bool {
        if self.accepts(&m) {
            self.moves.push(m);
            true
        } else {
            false
        }
    }

    /// Distinct AOD rows needed to load the batch's sources.
    pub fn rows(&self) -> Vec<AodRow> {
        let mut ys: Vec<i32> = self.moves.iter().map(|m| m.from.y).collect();
        ys.sort_unstable();
        ys.dedup();
        ys.into_iter().map(AodRow).collect()
    }

    /// Distinct AOD columns needed to load the batch's sources.
    pub fn columns(&self) -> Vec<AodColumn> {
        let mut xs: Vec<i32> = self.moves.iter().map(|m| m.from.x).collect();
        xs.sort_unstable();
        xs.dedup();
        xs.into_iter().map(AodColumn).collect()
    }

    /// Maximum rectilinear distance over the batch, in lattice units.
    pub fn max_distance(&self) -> f64 {
        self.moves
            .iter()
            .map(Move::rectilinear_distance)
            .fold(0.0, f64::max)
    }

    /// Duration of the whole transaction: one activation, simultaneous
    /// translation bounded by the longest move, one deactivation. Empty
    /// batches take no time.
    pub fn duration_us(&self, params: &HardwareParams) -> f64 {
        if self.moves.is_empty() {
            0.0
        } else {
            params.shuttle_time_us(self.max_distance())
        }
    }
}

impl FromIterator<Move> for MoveBatch {
    /// Collects moves, silently dropping those incompatible with the
    /// already-collected prefix. Use [`MoveBatch::try_push`] when the
    /// caller must observe rejections.
    fn from_iter<I: IntoIterator<Item = Move>>(iter: I) -> Self {
        let mut batch = MoveBatch::new();
        for m in iter {
            batch.try_push(m);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mv(fx: i32, fy: i32, tx: i32, ty: i32) -> Move {
        Move::new(Site::new(fx, fy), Site::new(tx, ty))
    }

    #[test]
    fn parallel_translation_same_direction() {
        // Two atoms in the same row moving right by the same amount.
        assert!(moves_fully_parallel(&mv(0, 0, 2, 0), &mv(3, 0, 5, 0)));
    }

    #[test]
    fn crossing_columns_rejected() {
        // Left atom ends right of the right atom: columns would cross.
        assert!(!moves_fully_parallel(&mv(0, 0, 5, 0), &mv(3, 0, 2, 0)));
    }

    #[test]
    fn merging_columns_rejected() {
        // Distinct columns may not end on the same x coordinate.
        assert!(!moves_fully_parallel(&mv(0, 0, 2, 1), &mv(4, 3, 2, 4)));
    }

    #[test]
    fn shared_column_must_translate_together() {
        // Same source column, same x-shift: fine.
        assert!(moves_fully_parallel(&mv(2, 0, 4, 0), &mv(2, 3, 4, 3)));
        // Same source column, different x-shift: the column would split.
        assert!(!moves_fully_parallel(&mv(2, 0, 4, 0), &mv(2, 3, 5, 3)));
    }

    /// Example 2 of the paper: q3 and q4 load simultaneously in one row
    /// (y = 3d) at x = d and x = 5d and move to distinct targets keeping
    /// x-order.
    #[test]
    fn example2_row_load() {
        let q3 = mv(0, 3, 1, 1); // x0 = d -> towards q2's vicinity
        let q4 = mv(4, 3, 3, 1); // x2 = 5d
        assert!(moves_fully_parallel(&q3, &q4));
    }

    #[test]
    fn vertical_crossing_rejected() {
        assert!(!moves_fully_parallel(&mv(0, 0, 0, 4), &mv(1, 2, 1, 1)));
    }

    #[test]
    fn batch_duration_uses_longest_move() {
        let hw = HardwareParams::shuttling();
        let mut batch = MoveBatch::new();
        assert!(batch.try_push(mv(0, 0, 0, 1))); // 1 unit
        assert!(batch.try_push(mv(3, 2, 3, 6))); // 4 units, distinct row
        let expect = hw.shuttle_time_us(4.0);
        assert!((batch.duration_us(&hw) - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_takes_no_time() {
        let hw = HardwareParams::mixed();
        assert_eq!(MoveBatch::new().duration_us(&hw), 0.0);
    }

    #[test]
    fn batch_rows_and_columns_dedup() {
        let batch: MoveBatch = [mv(0, 0, 0, 2), mv(3, 0, 3, 2)].into_iter().collect();
        assert_eq!(batch.rows(), vec![AodRow(0)]);
        assert_eq!(batch.columns(), vec![AodColumn(0), AodColumn(3)]);
    }

    #[test]
    fn from_iterator_drops_incompatible() {
        let batch: MoveBatch = [mv(0, 0, 5, 0), mv(3, 0, 2, 0)].into_iter().collect();
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn loads_parallel_requires_distinct_sources() {
        assert!(loads_parallel(&mv(0, 0, 1, 0), &mv(2, 2, 0, 2)));
        assert!(!loads_parallel(&mv(0, 0, 1, 0), &mv(0, 0, 0, 2)));
    }

    proptest! {
        #[test]
        fn compatibility_is_symmetric(
            afx in 0i32..8, afy in 0i32..8, atx in 0i32..8, aty in 0i32..8,
            bfx in 0i32..8, bfy in 0i32..8, btx in 0i32..8, bty in 0i32..8,
        ) {
            let a = mv(afx, afy, atx, aty);
            let b = mv(bfx, bfy, btx, bty);
            prop_assert_eq!(moves_fully_parallel(&a, &b), moves_fully_parallel(&b, &a));
        }

        #[test]
        fn translations_preserve_order(
            afx in 0i32..8, atx in 0i32..8, bfx in 0i32..8, btx in 0i32..8,
        ) {
            let a = mv(afx, 0, atx, 5);
            let b = mv(bfx, 1, btx, 6);
            if moves_fully_parallel(&a, &b) {
                // Order of columns preserved.
                prop_assert_eq!(afx.cmp(&bfx), atx.cmp(&btx));
            }
        }

        #[test]
        fn batch_pairwise_invariant(moves in proptest::collection::vec(
            (0i32..6, 0i32..6, 0i32..6, 0i32..6), 0..12)
        ) {
            let batch: MoveBatch = moves
                .into_iter()
                .map(|(a, b, c, d)| mv(a, b, c, d))
                .filter(|m| !m.is_trivial())
                .collect();
            let ms = batch.moves();
            for i in 0..ms.len() {
                for j in (i + 1)..ms.len() {
                    prop_assert!(moves_fully_parallel(&ms[i], &ms[j]));
                }
            }
        }
    }
}
