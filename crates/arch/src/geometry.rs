//! Interaction geometry: precomputed neighbourhoods and mutual-interaction
//! checks for multi-qubit gates.
//!
//! A multi-qubit `CᵐZ` gate is executable when **all** participating atoms
//! are pairwise within the interaction radius `r_int` of each other
//! (paper §2.1). During parallel execution, atoms belonging to different
//! simultaneous gates must keep at least the restriction radius
//! `r_restr ≥ r_int` from one another (the *restricted volume* of
//! Fig. 1a).

use crate::coord::Site;

/// Precomputed disc of lattice offsets within a Euclidean radius.
///
/// Enumerating every lattice site within `r_int` of a moving center is the
/// innermost loop of both routers, so the offsets `(dx, dy)` with
/// `dx² + dy² ≤ r²` are computed once and reused, sorted by increasing
/// distance (nearest sites first — a useful property for greedy target
/// selection).
///
/// # Example
///
/// ```
/// use na_arch::{Neighborhood, Site};
/// let hood = Neighborhood::new(2.0);
/// assert_eq!(hood.len(), 12); // the r = 2d disc of Fig. 1a
/// let around: Vec<Site> = hood.around(Site::new(5, 5)).collect();
/// assert_eq!(around.len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Neighborhood {
    radius: f64,
    /// `Site::within_threshold_sq(radius)` — the integer squared-distance
    /// bound of the disc, precomputed once.
    max_dist_sq: i64,
    offsets: Vec<(i32, i32)>,
}

impl Neighborhood {
    /// Builds the offset disc for Euclidean radius `r` (units of `d`),
    /// excluding the zero offset.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not finite and positive.
    pub fn new(r: f64) -> Self {
        assert!(r.is_finite() && r > 0.0, "radius must be positive");
        let reach = r.floor() as i32 + 1;
        let mut offsets = Vec::new();
        let origin = Site::new(0, 0);
        for dy in -reach..=reach {
            for dx in -reach..=reach {
                if (dx, dy) == (0, 0) {
                    continue;
                }
                if origin.within(Site::new(dx, dy), r) {
                    offsets.push((dx, dy));
                }
            }
        }
        offsets.sort_by_key(|&(dx, dy)| {
            (
                i64::from(dx) * i64::from(dx) + i64::from(dy) * i64::from(dy),
                dy,
                dx,
            )
        });
        Neighborhood {
            radius: r,
            max_dist_sq: Site::within_threshold_sq(r),
            offsets,
        }
    }

    /// The radius this disc was built for, in units of `d`.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The largest squared lattice distance inside the disc — the
    /// integer bound behind [`Neighborhood::contains_sq`].
    #[inline]
    pub fn max_dist_sq(&self) -> i64 {
        self.max_dist_sq
    }

    /// Returns `true` when a squared lattice distance `dist_sq` lies
    /// within this disc's radius — decision-identical to
    /// [`Site::within`] at the same radius, with no float math per
    /// query. This is the hot-path form of the within-range check: the
    /// `r²` threshold is computed once at disc construction, callers
    /// compare exact integer [`Site::distance_sq`] values against it.
    #[inline]
    pub fn contains_sq(&self, dist_sq: i64) -> bool {
        dist_sq <= self.max_dist_sq
    }

    /// Number of offsets in the disc.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Returns `true` if the disc is empty (radius < 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The raw offsets, sorted by increasing distance from the origin.
    #[inline]
    pub fn offsets(&self) -> &[(i32, i32)] {
        &self.offsets
    }

    /// Iterates the disc translated to `center` (bounds **not** checked;
    /// filter with [`crate::Lattice::contains`] as needed).
    pub fn around(&self, center: Site) -> impl Iterator<Item = Site> + '_ {
        self.offsets
            .iter()
            .map(move |&(dx, dy)| Site::new(center.x + dx, center.y + dy))
    }
}

/// Returns `true` if all sites are pairwise within radius `r` of each
/// other — the executability condition for a multi-qubit gate whose atoms
/// sit at `sites` (paper §2.1).
///
/// An empty or single-element slice is trivially compatible.
pub fn mutually_within(sites: &[Site], r: f64) -> bool {
    let r_sq = Site::within_threshold_sq(r);
    for (i, &a) in sites.iter().enumerate() {
        for &b in &sites[i + 1..] {
            if a.distance_sq(b) > r_sq {
                return false;
            }
        }
    }
    true
}

/// Returns `true` if every site in `a` keeps at least distance `r` from
/// every site in `b` — the parallel-execution restriction between two
/// simultaneous Rydberg gates (paper §2.1).
pub fn sets_clear_of(a: &[Site], b: &[Site], r: f64) -> bool {
    let r_sq = Site::within_threshold_sq(r);
    for &s in a {
        for &t in b {
            if s.distance_sq(t) <= r_sq {
                return false;
            }
        }
    }
    true
}

/// Returns `true` if `m` lattice sites pairwise within radius `r` exist —
/// i.e. whether a `CᵐZ`-family gate on `m` qubits is geometrically
/// realizable at all for interaction radius `r`.
///
/// For example, at `r = 1` no three lattice sites are pairwise within
/// range (the best pair of neighbours of a site is `√2` apart), so
/// three-qubit gates are infeasible; at `r = √2` an L-shaped triple works.
///
/// Runs a depth-first search over the offset disc with simple pruning;
/// evaluated once per mapping call, not in hot loops.
pub fn cluster_exists(m: usize, r: f64) -> bool {
    if m <= 1 {
        return true;
    }
    if m == 2 {
        return r >= 1.0;
    }
    let hood = Neighborhood::new(r);
    // Anchor the cluster at the origin; remaining members come from the
    // disc around it.
    let anchor = Site::new(0, 0);
    let candidates: Vec<Site> = hood.around(anchor).collect();
    cluster_exists_among(anchor, &candidates, m, r)
}

/// Returns `true` if a cluster of `m` sites pairwise within radius `r`
/// exists that contains `anchor` and draws its remaining members from
/// `candidates` — the topology-aware core of [`cluster_exists`]:
/// restricting `candidates` (e.g. to the trap rows of a zoned lattice)
/// restricts the clusters considered.
pub fn cluster_exists_among(anchor: Site, candidates: &[Site], m: usize, r: f64) -> bool {
    if m <= 1 {
        return true;
    }
    fn extend(chosen: &mut Vec<Site>, rest: &[Site], need: usize, r: f64) -> bool {
        if need == 0 {
            return true;
        }
        if rest.len() < need {
            return false;
        }
        for (i, &s) in rest.iter().enumerate() {
            if chosen.iter().all(|&c| c.within(s, r)) {
                chosen.push(s);
                if extend(chosen, &rest[i + 1..], need - 1, r) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    let mut chosen = vec![anchor];
    extend(&mut chosen, candidates, m - 1, r)
}

/// The largest `m` for which [`cluster_exists`] holds, capped at `cap`.
pub fn max_cluster_size(r: f64, cap: usize) -> usize {
    let mut m = 1;
    while m < cap && cluster_exists(m + 1, r) {
        m += 1;
    }
    m
}

/// Minimum pairwise distance between two site sets, in units of `d`.
///
/// Returns `f64::INFINITY` if either set is empty.
pub fn min_distance(a: &[Site], b: &[Site]) -> f64 {
    let mut best = i64::MAX;
    for &s in a {
        for &t in b {
            best = best.min(s.distance_sq(t));
        }
    }
    if best == i64::MAX {
        f64::INFINITY
    } else {
        (best as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disc_sizes_match_known_values() {
        // Gauss circle problem values minus the center.
        assert_eq!(Neighborhood::new(1.0).len(), 4);
        assert_eq!(Neighborhood::new(std::f64::consts::SQRT_2).len(), 8);
        assert_eq!(Neighborhood::new(2.0).len(), 12);
        assert_eq!(Neighborhood::new(2.5).len(), 20);
        assert_eq!(Neighborhood::new(4.5).len(), 68);
    }

    #[test]
    fn contains_sq_matches_within_decisions() {
        for r in [1.0, std::f64::consts::SQRT_2, 2.0, 2.5, 4.5] {
            let hood = Neighborhood::new(r);
            assert_eq!(hood.max_dist_sq(), Site::within_threshold_sq(r));
            let origin = Site::new(0, 0);
            for dx in -6i32..=6 {
                for dy in -6i32..=6 {
                    let s = Site::new(dx, dy);
                    assert_eq!(
                        hood.contains_sq(origin.distance_sq(s)),
                        origin.within(s, r),
                        "r = {r}, offset ({dx}, {dy})"
                    );
                }
            }
        }
    }

    #[test]
    fn offsets_sorted_by_distance() {
        let hood = Neighborhood::new(3.0);
        let origin = Site::new(0, 0);
        let dists: Vec<i64> = hood
            .offsets()
            .iter()
            .map(|&(dx, dy)| origin.distance_sq(Site::new(dx, dy)))
            .collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Example 7 of the paper: with r_int = √2 d, qubits on a unit square
    /// are mutually compatible (max pairwise distance √2), but three
    /// collinear qubits are not.
    #[test]
    fn rectangle_compatible_at_sqrt2() {
        let r = std::f64::consts::SQRT_2;
        let square = [Site::new(0, 0), Site::new(1, 0), Site::new(0, 1)];
        assert!(mutually_within(&square, r));
        let line = [Site::new(0, 0), Site::new(1, 0), Site::new(2, 0)];
        assert!(!mutually_within(&line, r));
    }

    #[test]
    fn mutually_within_trivial_cases() {
        assert!(mutually_within(&[], 1.0));
        assert!(mutually_within(&[Site::new(3, 3)], 0.5));
    }

    /// Fig. 1a: atoms of two parallel gates must be separated by r_restr.
    #[test]
    fn restriction_between_gate_sets() {
        let g1 = [Site::new(0, 0), Site::new(1, 0)];
        let g2_near = [Site::new(2, 0), Site::new(3, 0)];
        let g2_far = [Site::new(5, 0), Site::new(6, 0)];
        assert!(!sets_clear_of(&g1, &g2_near, 2.0));
        assert!(sets_clear_of(&g1, &g2_far, 2.0));
    }

    #[test]
    fn cluster_existence_by_radius() {
        // r = 1: pairs only.
        assert!(cluster_exists(2, 1.0));
        assert!(!cluster_exists(3, 1.0));
        // r = √2: up to a 2x2 block (4 sites, max pairwise √2).
        assert!(cluster_exists(4, std::f64::consts::SQRT_2));
        assert!(!cluster_exists(5, std::f64::consts::SQRT_2));
        // r = 2: comfortably fits 4+.
        assert!(cluster_exists(5, 2.0));
    }

    #[test]
    fn max_cluster_size_matches_existence() {
        assert_eq!(max_cluster_size(1.0, 10), 2);
        assert_eq!(max_cluster_size(std::f64::consts::SQRT_2, 10), 4);
        // The cap bounds the search: Table 1's largest gate is a C3Z.
        assert_eq!(max_cluster_size(4.5, 8), 8);
    }

    #[test]
    fn min_distance_basics() {
        let a = [Site::new(0, 0)];
        let b = [Site::new(3, 4), Site::new(10, 10)];
        assert_eq!(min_distance(&a, &b), 5.0);
        assert_eq!(min_distance(&a, &[]), f64::INFINITY);
    }

    proptest! {
        #[test]
        fn around_preserves_offsets(cx in -20i32..20, cy in -20i32..20, r in 1.0f64..4.0) {
            let hood = Neighborhood::new(r);
            let center = Site::new(cx, cy);
            for s in hood.around(center) {
                prop_assert!(center.within(s, r));
            }
            prop_assert_eq!(hood.around(center).count(), hood.len());
        }

        #[test]
        fn clear_of_symmetric(shift in 0i32..10) {
            let a = [Site::new(0, 0), Site::new(1, 1)];
            let b = [Site::new(shift, 0), Site::new(shift, 1)];
            prop_assert_eq!(sets_clear_of(&a, &b, 2.5), sets_clear_of(&b, &a, 2.5));
        }
    }
}
