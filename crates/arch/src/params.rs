//! Hardware parameter sets.
//!
//! [`HardwareParams`] bundles every physical quantity the mapper and the
//! scheduler consume: lattice dimensions, interaction/restriction radii,
//! operation fidelities, operation times, shuttling kinematics and
//! coherence times. The three constructors [`HardwareParams::shuttling`],
//! [`HardwareParams::gate_based`] and [`HardwareParams::mixed`] reproduce
//! the paper's Table 1c presets verbatim.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;

/// Complete description of a neutral-atom hardware configuration.
///
/// All radii are in units of the lattice constant `d`; all times in
/// microseconds; all fidelities in `[0, 1]`.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// let hw = HardwareParams::shuttling();
/// assert_eq!(hw.r_int, 2.0);
/// assert_eq!(hw.f_shuttle, 1.0);
/// // Effective coherence time of Eq. (1): T1·T2 / (T1 + T2).
/// assert!((hw.t_eff_us() - 1.47783e6).abs() / hw.t_eff_us() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareParams {
    /// Human-readable preset name (e.g. `"shuttling"`).
    pub name: String,
    /// Side length `l` of the square trap lattice (Table 1: 15).
    pub lattice_side: u32,
    /// Lattice constant `d` in micrometres (Table 1: 3 µm).
    pub lattice_constant_um: f64,
    /// Number of trapped atoms `N` (Table 1: 200).
    pub num_atoms: u32,
    /// Interaction radius `r_int` in units of `d`.
    pub r_int: f64,
    /// Restriction radius `r_restr ≥ r_int` in units of `d`.
    pub r_restr: f64,
    /// Average CZ gate fidelity `F_CZ`.
    pub f_cz: f64,
    /// Average single-qubit gate fidelity (`F_H` in Table 1c).
    pub f_single: f64,
    /// Fidelity of one shuttling operation (load + move + store).
    pub f_shuttle: f64,
    /// Single-qubit gate time `t_U3` in µs.
    pub t_single_us: f64,
    /// CZ gate time in µs.
    pub t_cz_us: f64,
    /// CCZ gate time in µs.
    pub t_ccz_us: f64,
    /// CCCZ gate time in µs.
    pub t_cccz_us: f64,
    /// AOD shuttling speed `v` in µm/µs.
    pub shuttle_speed_um_per_us: f64,
    /// AOD row/column activation time in µs.
    pub t_act_us: f64,
    /// AOD row/column deactivation time in µs.
    pub t_deact_us: f64,
    /// Relaxation time `T1` in µs.
    pub t1_us: f64,
    /// Dephasing time `T2` in µs.
    pub t2_us: f64,
}

impl HardwareParams {
    fn base(name: &str) -> Self {
        HardwareParams {
            name: name.to_owned(),
            lattice_side: 15,
            lattice_constant_um: 3.0,
            num_atoms: 200,
            r_int: 2.0,
            r_restr: 2.0,
            f_cz: 0.994,
            f_single: 0.995,
            f_shuttle: 1.0,
            t_single_us: 0.5,
            t_cz_us: 0.2,
            t_ccz_us: 0.4,
            t_cccz_us: 0.6,
            shuttle_speed_um_per_us: 0.55,
            t_act_us: 20.0,
            t_deact_us: 20.0,
            t1_us: 1.0e8,
            t2_us: 1.5e6,
        }
    }

    /// The *(1) shuttling-optimized* preset of Table 1c: fast, lossless
    /// shuttles, comparatively error-prone CZ gates.
    pub fn shuttling() -> Self {
        HardwareParams::base("shuttling")
    }

    /// The *(2) gate-optimized* preset of Table 1c: long-range, high
    /// fidelity CZ gates; slow, lossy shuttles.
    pub fn gate_based() -> Self {
        HardwareParams {
            r_int: 4.5,
            r_restr: 4.5,
            f_cz: 0.9995,
            f_single: 0.9999,
            f_shuttle: 0.999,
            shuttle_speed_um_per_us: 0.2,
            t_act_us: 50.0,
            t_deact_us: 50.0,
            ..HardwareParams::base("gate")
        }
    }

    /// The *(3) mixed* preset of Table 1c: similar fidelities for both
    /// capabilities; the hybrid mapper's sweet spot.
    pub fn mixed() -> Self {
        HardwareParams {
            r_int: 2.5,
            r_restr: 2.5,
            f_cz: 0.995,
            f_single: 0.999,
            f_shuttle: 0.9999,
            shuttle_speed_um_per_us: 0.3,
            t_act_us: 40.0,
            t_deact_us: 40.0,
            ..HardwareParams::base("mixed")
        }
    }

    /// All three Table 1c presets in paper order.
    pub fn table1_presets() -> Vec<HardwareParams> {
        vec![
            HardwareParams::shuttling(),
            HardwareParams::gate_based(),
            HardwareParams::mixed(),
        ]
    }

    /// Starts a builder initialized from this configuration.
    pub fn to_builder(&self) -> HardwareParamsBuilder {
        HardwareParamsBuilder {
            params: self.clone(),
        }
    }

    /// Effective coherence time `T_eff = T1·T2/(T1 + T2)` of Eq. (1), µs.
    #[inline]
    pub fn t_eff_us(&self) -> f64 {
        self.t1_us * self.t2_us / (self.t1_us + self.t2_us)
    }

    /// Execution time of a `CᵐZ`-family gate acting on `arity` qubits
    /// (`arity = m + 1` for `CᵐZ`), in µs.
    ///
    /// Table 1c gives times up to CCCZ (arity 4); larger gates extrapolate
    /// linearly at the CZ→CCZ increment (0.2 µs per extra qubit), matching
    /// the table's arithmetic progression.
    #[inline]
    pub fn cz_family_time_us(&self, arity: usize) -> f64 {
        match arity {
            0 | 1 => 0.0,
            2 => self.t_cz_us,
            3 => self.t_ccz_us,
            4 => self.t_cccz_us,
            n => self.t_cccz_us + (n as f64 - 4.0) * (self.t_ccz_us - self.t_cz_us),
        }
    }

    /// Average fidelity of a `CᵐZ`-family gate on `arity` qubits.
    ///
    /// Table 1c only specifies `F_CZ`; larger gates are modeled as
    /// `F_CZ^(arity − 1)` (see DESIGN.md §4.5 — the choice cancels in the
    /// paper's δF metric because mapped and original circuits contain the
    /// same multi-qubit gates).
    #[inline]
    pub fn cz_family_fidelity(&self, arity: usize) -> f64 {
        if arity <= 1 {
            self.f_single
        } else {
            self.f_cz.powi(arity as i32 - 1)
        }
    }

    /// Duration of one shuttle move covering rectilinear distance
    /// `dist_units` lattice units, including AOD (de)activation, in µs.
    #[inline]
    pub fn shuttle_time_us(&self, dist_units: f64) -> f64 {
        self.t_act_us + self.shuttle_move_time_us(dist_units) + self.t_deact_us
    }

    /// Pure movement time (no activation) for a rectilinear distance in
    /// lattice units, in µs.
    #[inline]
    pub fn shuttle_move_time_us(&self, dist_units: f64) -> f64 {
        dist_units * self.lattice_constant_um / self.shuttle_speed_um_per_us
    }

    /// Fidelity of one full SWAP gate, decomposed as 3 CZ + 6 single-qubit
    /// gates on NA hardware (paper §2.2).
    #[inline]
    pub fn swap_fidelity(&self) -> f64 {
        self.f_cz.powi(3) * self.f_single.powi(6)
    }

    /// Duration of one decomposed SWAP gate (3 CZ + 2 layers of
    /// single-qubit gates on each side — 4 sequential single-qubit slots),
    /// in µs.
    #[inline]
    pub fn swap_time_us(&self) -> f64 {
        3.0 * self.t_cz_us + 4.0 * self.t_single_us
    }

    /// Validates physical consistency of the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when a quantity is outside
    /// its domain (non-positive radius or speed, fidelity outside `[0,1]`,
    /// `r_restr < r_int`), or [`ArchError::TooManyAtoms`] when the atom
    /// count leaves no free trap.
    pub fn validate(&self) -> Result<(), ArchError> {
        fn positive(name: &'static str, v: f64) -> Result<(), ArchError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(ArchError::InvalidParameter {
                    name,
                    reason: format!("must be positive, got {v}"),
                })
            }
        }
        fn fidelity(name: &'static str, v: f64) -> Result<(), ArchError> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(ArchError::InvalidParameter {
                    name,
                    reason: format!("must lie in [0, 1], got {v}"),
                })
            }
        }
        positive("lattice_constant_um", self.lattice_constant_um)?;
        positive("r_int", self.r_int)?;
        positive("r_restr", self.r_restr)?;
        positive("shuttle_speed_um_per_us", self.shuttle_speed_um_per_us)?;
        positive("t1_us", self.t1_us)?;
        positive("t2_us", self.t2_us)?;
        for (name, v) in [
            ("t_single_us", self.t_single_us),
            ("t_cz_us", self.t_cz_us),
            ("t_ccz_us", self.t_ccz_us),
            ("t_cccz_us", self.t_cccz_us),
            ("t_act_us", self.t_act_us),
            ("t_deact_us", self.t_deact_us),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ArchError::InvalidParameter {
                    name,
                    reason: format!("must be non-negative, got {v}"),
                });
            }
        }
        fidelity("f_cz", self.f_cz)?;
        fidelity("f_single", self.f_single)?;
        fidelity("f_shuttle", self.f_shuttle)?;
        if self.r_restr + 1e-12 < self.r_int {
            return Err(ArchError::InvalidParameter {
                name: "r_restr",
                reason: format!(
                    "restriction radius {} must be >= interaction radius {}",
                    self.r_restr, self.r_int
                ),
            });
        }
        if self.lattice_side == 0 {
            return Err(ArchError::InvalidParameter {
                name: "lattice_side",
                reason: "must be positive".into(),
            });
        }
        let sites = self.lattice_side * self.lattice_side;
        if self.num_atoms >= sites {
            return Err(ArchError::TooManyAtoms {
                atoms: self.num_atoms,
                sites,
            });
        }
        Ok(())
    }
}

impl Default for HardwareParams {
    /// The mixed preset — the configuration where hybrid mapping matters.
    fn default() -> Self {
        HardwareParams::mixed()
    }
}

/// Builder for customized [`HardwareParams`] starting from a preset.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// let hw = HardwareParams::mixed()
///     .to_builder()
///     .lattice(21, 3.0)
///     .num_atoms(400)
///     .f_cz(0.9975)
///     .build()?;
/// assert_eq!(hw.lattice_side, 21);
/// # Ok::<(), na_arch::ArchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HardwareParamsBuilder {
    params: HardwareParams,
}

impl HardwareParamsBuilder {
    /// Sets the preset name.
    pub fn name(mut self, name: &str) -> Self {
        self.params.name = name.to_owned();
        self
    }

    /// Sets the lattice side length and lattice constant (µm).
    pub fn lattice(mut self, side: u32, d_um: f64) -> Self {
        self.params.lattice_side = side;
        self.params.lattice_constant_um = d_um;
        self
    }

    /// Sets the number of trapped atoms.
    pub fn num_atoms(mut self, n: u32) -> Self {
        self.params.num_atoms = n;
        self
    }

    /// Sets interaction and restriction radii together (`r_restr = r_int`).
    pub fn radius(mut self, r: f64) -> Self {
        self.params.r_int = r;
        self.params.r_restr = r;
        self
    }

    /// Sets the interaction radius only.
    pub fn r_int(mut self, r: f64) -> Self {
        self.params.r_int = r;
        self
    }

    /// Sets the restriction radius only.
    pub fn r_restr(mut self, r: f64) -> Self {
        self.params.r_restr = r;
        self
    }

    /// Sets the CZ fidelity.
    pub fn f_cz(mut self, f: f64) -> Self {
        self.params.f_cz = f;
        self
    }

    /// Sets the single-qubit gate fidelity.
    pub fn f_single(mut self, f: f64) -> Self {
        self.params.f_single = f;
        self
    }

    /// Sets the per-move shuttle fidelity.
    pub fn f_shuttle(mut self, f: f64) -> Self {
        self.params.f_shuttle = f;
        self
    }

    /// Sets shuttling kinematics: speed (µm/µs) and AOD (de)activation
    /// time (µs, applied to both).
    pub fn shuttle(mut self, v_um_per_us: f64, t_act_us: f64) -> Self {
        self.params.shuttle_speed_um_per_us = v_um_per_us;
        self.params.t_act_us = t_act_us;
        self.params.t_deact_us = t_act_us;
        self
    }

    /// Sets coherence times (µs).
    pub fn coherence(mut self, t1_us: f64, t2_us: f64) -> Self {
        self.params.t1_us = t1_us;
        self.params.t2_us = t2_us;
        self
    }

    /// Finalizes and validates the configuration.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`HardwareParams::validate`].
    pub fn build(self) -> Result<HardwareParams, ArchError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for p in HardwareParams::table1_presets() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn presets_match_table1c() {
        let s = HardwareParams::shuttling();
        assert_eq!(
            (s.r_int, s.f_cz, s.f_single, s.f_shuttle),
            (2.0, 0.994, 0.995, 1.0)
        );
        assert_eq!((s.shuttle_speed_um_per_us, s.t_act_us), (0.55, 20.0));

        let g = HardwareParams::gate_based();
        assert_eq!(
            (g.r_int, g.f_cz, g.f_single, g.f_shuttle),
            (4.5, 0.9995, 0.9999, 0.999)
        );
        assert_eq!((g.shuttle_speed_um_per_us, g.t_act_us), (0.2, 50.0));

        let m = HardwareParams::mixed();
        assert_eq!(
            (m.r_int, m.f_cz, m.f_single, m.f_shuttle),
            (2.5, 0.995, 0.999, 0.9999)
        );
        assert_eq!((m.shuttle_speed_um_per_us, m.t_act_us), (0.3, 40.0));

        for p in [&s, &g, &m] {
            assert_eq!(p.lattice_side, 15);
            assert_eq!(p.lattice_constant_um, 3.0);
            assert_eq!(p.num_atoms, 200);
            assert_eq!(p.t_single_us, 0.5);
            assert_eq!(p.t_cz_us, 0.2);
            assert_eq!(p.t_ccz_us, 0.4);
            assert_eq!(p.t_cccz_us, 0.6);
            assert_eq!(p.t1_us, 1.0e8);
            assert_eq!(p.t2_us, 1.5e6);
        }
    }

    #[test]
    fn gate_times_follow_arity_progression() {
        let p = HardwareParams::mixed();
        assert_eq!(p.cz_family_time_us(2), 0.2);
        assert_eq!(p.cz_family_time_us(3), 0.4);
        assert_eq!(p.cz_family_time_us(4), 0.6);
        assert!((p.cz_family_time_us(5) - 0.8).abs() < 1e-12);
        assert_eq!(p.cz_family_time_us(1), 0.0);
    }

    #[test]
    fn fidelity_model_scales_with_arity() {
        let p = HardwareParams::mixed();
        assert_eq!(p.cz_family_fidelity(2), p.f_cz);
        assert!((p.cz_family_fidelity(3) - p.f_cz * p.f_cz).abs() < 1e-12);
        assert!(p.cz_family_fidelity(4) < p.cz_family_fidelity(3));
    }

    #[test]
    fn shuttle_time_accounts_for_activation() {
        let p = HardwareParams::shuttling();
        // 2 lattice units = 6 µm at 0.55 µm/µs plus 2 × 20 µs act/deact.
        let t = p.shuttle_time_us(2.0);
        assert!((t - (40.0 + 6.0 / 0.55)).abs() < 1e-9);
    }

    #[test]
    fn swap_cost_composition() {
        let p = HardwareParams::gate_based();
        assert!((p.swap_fidelity() - p.f_cz.powi(3) * p.f_single.powi(6)).abs() < 1e-15);
        assert!((p.swap_time_us() - (0.6 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(HardwareParams::mixed()
            .to_builder()
            .f_cz(1.2)
            .build()
            .is_err());
        assert!(HardwareParams::mixed()
            .to_builder()
            .radius(-1.0)
            .build()
            .is_err());
        assert!(HardwareParams::mixed()
            .to_builder()
            .r_int(3.0)
            .r_restr(2.0)
            .build()
            .is_err());
        assert!(HardwareParams::mixed()
            .to_builder()
            .lattice(10, 3.0)
            .num_atoms(100)
            .build()
            .is_err());
    }

    #[test]
    fn builder_roundtrip_preserves_preset() {
        let m = HardwareParams::mixed();
        let rebuilt = m.to_builder().build().expect("valid");
        assert_eq!(m, rebuilt);
    }

    #[test]
    fn t_eff_formula() {
        let p = HardwareParams::mixed();
        let expect = 1.0e8 * 1.5e6 / (1.0e8 + 1.5e6);
        assert!((p.t_eff_us() - expect).abs() < 1e-6);
    }
}
