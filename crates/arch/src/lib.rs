//! Neutral-atom (NA) hardware architecture model.
//!
//! This crate models the computational substrate assumed by the hybrid
//! mapping paper (Schmid et al., DAC 2024):
//!
//! * a regular square lattice of SLM trap coordinates with lattice constant
//!   `d` ([`Lattice`], [`Site`]),
//! * long-range Rydberg interactions parameterized by an *interaction
//!   radius* `r_int` and a *restriction radius* `r_restr` ([`geometry`]),
//! * 2D acousto-optic deflector (AOD) shuttling of atom arrays with
//!   row/column ordering constraints ([`aod`]),
//! * hardware parameter sets (gate fidelities, operation times, coherence
//!   times) with the three presets of the paper's Table 1c ([`HardwareParams`]),
//! * backend descriptions behind the [`Target`] trait ([`target`]):
//!   topology (square or zoned storage/interaction layout), AOD
//!   constraint set and native gate set, resolved into a [`TargetSpec`]
//!   snapshot consumed by the compiler.
//!
//! # Example
//!
//! ```
//! use na_arch::{HardwareParams, Lattice, Site};
//!
//! let params = HardwareParams::mixed();
//! let lattice = Lattice::new(params.lattice_side);
//! let a = Site::new(0, 0);
//! let b = Site::new(2, 1);
//! assert!(lattice.contains(a) && lattice.contains(b));
//! // With r_int = 2.5 d, sites at distance sqrt(5) d can interact.
//! assert!(a.distance(b) <= params.r_int);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adjacency;
pub mod aod;
pub mod coord;
pub mod error;
pub mod geometry;
pub mod lattice;
pub mod params;
pub mod target;

pub use adjacency::{NeighborTable, RegionGrid};
pub use aod::{AodColumn, AodRow, Move, MoveBatch};
pub use coord::Site;
pub use error::ArchError;
pub use geometry::Neighborhood;
pub use lattice::{Lattice, LatticeKind};
pub use params::{HardwareParams, HardwareParamsBuilder};
pub use target::{AodConstraints, NativeGateSet, Target, TargetSpec, ZonedTarget};
