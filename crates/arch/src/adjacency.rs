//! CSR adjacency: precomputed in-bounds neighbor lists per
//! `(Lattice, Neighborhood)` pair.
//!
//! Every hot loop of the routing core used to enumerate lattice
//! neighbors geometrically — `hood.around(site)` offset arithmetic plus
//! a `Lattice::contains` bounds check and a `Lattice::index` dense-index
//! computation *per visited neighbor, per visit*. On the paper's
//! near-full 15×15 arrays (and beyond) that geometry math dominates BFS
//! and the routers' adjacency scans. [`NeighborTable`] resolves the
//! whole product once into one dense `offsets`/`neighbors` CSR pair:
//! the neighbors of dense site `i` are the slice
//! `neighbors[offsets[i]..offsets[i + 1]]`, already bounds-filtered and
//! already in dense-index form.
//!
//! The per-site neighbor order is exactly the order
//! `hood.around(site).filter(|s| lattice.contains(*s))` yields — the
//! disc's nearest-first `(d², dy, dx)` order — so consumers that switch
//! from the iterator to the table enumerate candidates in the identical
//! sequence (a load-bearing property for the routers' deterministic
//! tie-breaking).
//!
//! # Example
//!
//! ```
//! use na_arch::{Lattice, NeighborTable, Neighborhood, Site};
//! let lattice = Lattice::new(15);
//! let table = NeighborTable::build(&lattice, &Neighborhood::new(2.0));
//! // Interior sites see the full 12-site disc of Fig. 1a ...
//! let center = lattice.index(Site::new(7, 7));
//! assert_eq!(table.neighbors(center).len(), 12);
//! // ... corner sites only its in-bounds quarter.
//! let corner = lattice.index(Site::new(0, 0));
//! assert_eq!(table.neighbors(corner).len(), 5);
//! ```

use serde::{Deserialize, Serialize};

use crate::geometry::Neighborhood;
use crate::lattice::Lattice;

/// Precomputed CSR neighbor table of a lattice under a Euclidean
/// interaction radius: one `offsets`/`neighbors` pair over dense site
/// indices, replacing per-visit `Neighborhood::around` geometry math in
/// BFS, the routers' adjacency scans and the verifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborTable {
    lattice: Lattice,
    radius: f64,
    /// `offsets[i]..offsets[i + 1]` delimits site `i`'s neighbor slice.
    offsets: Vec<u32>,
    /// Dense site indices, per site in the disc's nearest-first order.
    neighbors: Vec<u32>,
    /// Coarse R×R clustering of this table (see [`RegionGrid`]),
    /// derived from the fine CSR so every consumer of the table gets
    /// the region hierarchy for free.
    regions: RegionGrid,
}

impl NeighborTable {
    /// Resolves the `(lattice, hood)` product into a CSR table.
    ///
    /// Cost is `O(num_sites × hood.len())` — run once per compiler
    /// construction (or mapper call), never per routing round.
    pub fn build(lattice: &Lattice, hood: &Neighborhood) -> Self {
        let n = lattice.num_sites();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(n * hood.len());
        offsets.push(0u32);
        for idx in 0..n {
            let center = lattice.site(idx);
            for s in hood.around(center) {
                if lattice.contains(s) {
                    neighbors.push(lattice.index(s) as u32);
                }
            }
            offsets.push(neighbors.len() as u32);
        }
        let regions = RegionGrid::from_csr(lattice, &offsets, &neighbors, RegionGrid::DEFAULT_SIDE);
        NeighborTable {
            lattice: *lattice,
            radius: hood.radius(),
            offsets,
            neighbors,
            regions,
        }
    }

    /// [`NeighborTable::build`] constructing the disc internally.
    pub fn for_radius(lattice: &Lattice, r: f64) -> Self {
        NeighborTable::build(lattice, &Neighborhood::new(r))
    }

    /// The lattice this table was built over.
    #[inline]
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// The Euclidean radius this table was built for.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of sites covered (rows of the CSR matrix).
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed adjacency entries.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The in-bounds neighbors of dense site index `idx`, nearest
    /// first — dense indices, already bounds-checked at build time.
    #[inline]
    pub fn neighbors(&self, idx: usize) -> &[u32] {
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Returns `true` when this table describes exactly the given
    /// `(lattice, radius)` pair — the staleness check for consumers that
    /// cache a table across calls.
    #[inline]
    pub fn matches(&self, lattice: &Lattice, r: f64) -> bool {
        self.lattice == *lattice && self.radius == r
    }

    /// The coarse R×R region clustering of this table — region-level
    /// adjacency plus per-region site slices, used by the routing core
    /// for coarse-to-fine distance queries and ring-ordered scans.
    #[inline]
    pub fn regions(&self) -> &RegionGrid {
        &self.regions
    }
}

/// Coarse R×R clustering of a [`NeighborTable`]: the lattice bounding
/// box is tiled into square regions of `side × side` geometric cells,
/// and the fine CSR is projected onto them — a region-level adjacency
/// graph (region `A` is adjacent to region `B` iff some fine edge
/// crosses them) plus per-region dense-site slices.
///
/// Two properties make the grid useful to the routing core:
///
/// * **Admissibility** — any fine path makes at most one region
///   transition per hop, so the region-graph BFS distance between two
///   sites' regions is a lower bound on their fine BFS distance (over
///   the full lattice *and* over any occupancy-restricted subgraph,
///   since removing fine edges only grows fine distances). Region
///   reachability is therefore a sound pruning criterion: a site whose
///   region cannot reach any target's region in the region graph
///   cannot reach the target at all.
/// * **Ring ordering** — sites of a region at Chebyshev region
///   distance `K ≥ 1` from a reference region are at least
///   `(K - 1)·side + 1` cells away, so nearest-site scans can walk
///   outward ring by ring and stop as soon as the best hit beats the
///   next ring's lower bound.
///
/// The grid is a deterministic pure function of `(lattice, radius)`
/// (via the fine CSR), so it participates in [`TargetSpec`] equality
/// without breaking the re-spec round-trip.
///
/// [`TargetSpec`]: crate::target::TargetSpec
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionGrid {
    /// Region edge length in lattice cells.
    side: u32,
    /// Regions per geometric row of the bounding box.
    regions_x: u32,
    /// Region rows covering the bounding box (zoned lattices count
    /// lane rows in the box; lane-only regions simply hold no sites).
    regions_y: u32,
    /// Dense site index → region id (`ry * regions_x + rx`).
    region_of: Vec<u32>,
    /// CSR offsets into `sites`, one slice per region.
    site_offsets: Vec<u32>,
    /// Dense site indices grouped by region, ascending within each.
    sites: Vec<u32>,
    /// CSR offsets into `adj`, one slice per region.
    adj_offsets: Vec<u32>,
    /// Adjacent region ids (deduplicated, ascending, no self-loops).
    adj: Vec<u32>,
}

impl RegionGrid {
    /// Default region edge length in lattice cells. Large enough that
    /// every interaction radius in use (≤ a few cells) only produces
    /// edges between touching regions, small enough that a 100×100
    /// lattice still resolves into a 13×13 region graph.
    pub const DEFAULT_SIDE: u32 = 8;

    /// The region partition of a lattice at the given region side,
    /// without adjacency: `(regions_x, regions_y, region_of)` where
    /// `region_of[dense site index] = ry * regions_x + rx`. This is the
    /// single source of truth for the site→region mapping — the routing
    /// core's occupancy buckets use it so they can never drift from the
    /// grid resolved into the target spec.
    pub fn partition(lattice: &Lattice, side: u32) -> (u32, u32, Vec<u32>) {
        let side = side.max(1);
        let (mut max_x, mut max_y) = (0u32, 0u32);
        for s in lattice.iter() {
            max_x = max_x.max(s.x as u32);
            max_y = max_y.max(s.y as u32);
        }
        let regions_x = max_x / side + 1;
        let regions_y = max_y / side + 1;
        let region_of = (0..lattice.num_sites())
            .map(|idx| {
                let s = lattice.site(idx);
                (s.y as u32 / side) * regions_x + s.x as u32 / side
            })
            .collect();
        (regions_x, regions_y, region_of)
    }

    /// Clusters a fine CSR into regions of the given side length.
    pub(crate) fn from_csr(
        lattice: &Lattice,
        offsets: &[u32],
        neighbors: &[u32],
        side: u32,
    ) -> Self {
        let (regions_x, regions_y, region_of) = Self::partition(lattice, side.max(1));
        let num_regions = (regions_x * regions_y) as usize;
        let n = lattice.num_sites();

        // Per-region site slices: counting sort over dense indices, so
        // each slice is ascending.
        let mut site_offsets = vec![0u32; num_regions + 1];
        for &r in &region_of {
            site_offsets[r as usize + 1] += 1;
        }
        for r in 0..num_regions {
            site_offsets[r + 1] += site_offsets[r];
        }
        let mut cursor: Vec<u32> = site_offsets[..num_regions].to_vec();
        let mut sites = vec![0u32; n];
        for (idx, &r) in region_of.iter().enumerate() {
            sites[cursor[r as usize] as usize] = idx as u32;
            cursor[r as usize] += 1;
        }

        // Region adjacency = projection of the fine edges.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for i in 0..n {
            let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
            let ri = region_of[i];
            for &j in &neighbors[lo..hi] {
                let rj = region_of[j as usize];
                if ri != rj {
                    pairs.push((ri, rj));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut adj_offsets = vec![0u32; num_regions + 1];
        for &(a, _) in &pairs {
            adj_offsets[a as usize + 1] += 1;
        }
        for r in 0..num_regions {
            adj_offsets[r + 1] += adj_offsets[r];
        }
        let adj = pairs.iter().map(|&(_, b)| b).collect();

        RegionGrid {
            side: side.max(1),
            regions_x,
            regions_y,
            region_of,
            site_offsets,
            sites,
            adj_offsets,
            adj,
        }
    }

    /// Region edge length in lattice cells.
    #[inline]
    pub fn side(&self) -> u32 {
        self.side
    }

    /// `(regions_x, regions_y)` — the region grid dimensions.
    #[inline]
    pub fn dims(&self) -> (u32, u32) {
        (self.regions_x, self.regions_y)
    }

    /// Total number of regions (including empty lane-only regions on
    /// zoned lattices).
    #[inline]
    pub fn num_regions(&self) -> usize {
        (self.regions_x * self.regions_y) as usize
    }

    /// The region id of a dense site index.
    #[inline]
    pub fn region_of(&self, site_idx: usize) -> u32 {
        self.region_of[site_idx]
    }

    /// `(rx, ry)` grid coordinates of a region id.
    #[inline]
    pub fn coords(&self, region: u32) -> (u32, u32) {
        (region % self.regions_x, region / self.regions_x)
    }

    /// The dense site indices inside a region, ascending.
    #[inline]
    pub fn sites_in(&self, region: u32) -> &[u32] {
        let lo = self.site_offsets[region as usize] as usize;
        let hi = self.site_offsets[region as usize + 1] as usize;
        &self.sites[lo..hi]
    }

    /// The regions adjacent to `region` in the projected fine graph
    /// (deduplicated, ascending, no self-loop).
    #[inline]
    pub fn neighbors(&self, region: u32) -> &[u32] {
        let lo = self.adj_offsets[region as usize] as usize;
        let hi = self.adj_offsets[region as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Visits every region of a `regions_x × regions_y` grid whose
    /// Chebyshev distance from `(cx, cy)` is exactly `k`, clipped to
    /// the grid, in row-major order. `k = 0` visits only `(cx, cy)`.
    ///
    /// An associated function (no grid instance required) so occupancy
    /// buckets built from [`RegionGrid::partition`] alone walk the
    /// exact same ring geometry as consumers holding a full grid.
    pub fn for_each_ring_region(
        regions_x: u32,
        regions_y: u32,
        cx: u32,
        cy: u32,
        k: u32,
        visit: &mut impl FnMut(u32, u32),
    ) {
        let x_lo = cx.saturating_sub(k);
        let x_hi = (cx + k).min(regions_x - 1);
        let y_lo = cy.saturating_sub(k);
        let y_hi = (cy + k).min(regions_y - 1);
        for ry in y_lo..=y_hi {
            if cy.abs_diff(ry) == k {
                // Top/bottom edge of the ring: the full row segment.
                for rx in x_lo..=x_hi {
                    visit(rx, ry);
                }
            } else {
                // Interior row: only the two vertical edges.
                if cx >= k {
                    visit(cx - k, ry);
                }
                if k > 0 && cx + k < regions_x {
                    visit(cx + k, ry);
                }
            }
        }
    }

    /// Lower bound, in lattice cells, on the Euclidean (and Chebyshev)
    /// distance from any point inside a region to any site of a region
    /// at Chebyshev region distance `k`: `0` for `k = 0`, else
    /// `(k − 1)·side + 1` (the rings share no cells, so at least one
    /// full region of separation minus the reference point's own
    /// region). Lets ring walks stop as soon as the best hit found so
    /// far beats everything a farther ring could hold.
    #[inline]
    pub fn ring_min_cells(side: u32, k: u32) -> u32 {
        if k == 0 {
            0
        } else {
            (k - 1) * side + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Site;
    use proptest::prelude::*;

    fn reference_neighbors(lattice: &Lattice, hood: &Neighborhood, center: Site) -> Vec<u32> {
        hood.around(center)
            .filter(|s| lattice.contains(*s))
            .map(|s| lattice.index(s) as u32)
            .collect()
    }

    #[test]
    fn matches_reports_staleness() {
        let lat = Lattice::new(6);
        let table = NeighborTable::for_radius(&lat, 2.0);
        assert!(table.matches(&lat, 2.0));
        assert!(!table.matches(&lat, 2.5));
        assert!(!table.matches(&Lattice::new(7), 2.0));
        assert_eq!(table.num_sites(), 36);
    }

    #[test]
    fn interior_degree_matches_disc_size() {
        let lat = Lattice::new(9);
        for r in [1.0, std::f64::consts::SQRT_2, 2.0, 2.5] {
            let hood = Neighborhood::new(r);
            let table = NeighborTable::build(&lat, &hood);
            let center = lat.index(Site::new(4, 4));
            assert_eq!(table.neighbors(center).len(), hood.len(), "r = {r}");
        }
    }

    #[test]
    fn zoned_tables_skip_lane_rows() {
        let lat = Lattice::zoned(9, 2, 1).unwrap();
        let table = NeighborTable::for_radius(&lat, 2.0);
        for idx in 0..table.num_sites() {
            for &n in table.neighbors(idx) {
                let site = lat.site(n as usize);
                assert!(lat.is_trap_row(site.y), "lane site {site} in table");
            }
        }
    }

    #[test]
    fn region_partition_covers_every_site_once() {
        for lat in [Lattice::new(10), Lattice::zoned(9, 2, 1).unwrap()] {
            let table = NeighborTable::for_radius(&lat, 2.0);
            let grid = table.regions();
            let mut seen = vec![false; lat.num_sites()];
            for region in 0..grid.num_regions() as u32 {
                for &s in grid.sites_in(region) {
                    assert_eq!(grid.region_of(s as usize), region);
                    assert!(!seen[s as usize], "site {s} in two regions");
                    seen[s as usize] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "every site bucketed");
        }
    }

    #[test]
    fn region_adjacency_projects_every_fine_edge() {
        let lat = Lattice::new(20);
        let table = NeighborTable::for_radius(&lat, 2.5);
        let grid = table.regions();
        for idx in 0..table.num_sites() {
            let ri = grid.region_of(idx);
            for &n in table.neighbors(idx) {
                let rj = grid.region_of(n as usize);
                assert!(
                    ri == rj || grid.neighbors(ri).contains(&rj),
                    "fine edge {idx}->{n} crosses regions {ri}->{rj} with no region edge"
                );
            }
        }
    }

    #[test]
    fn region_adjacency_is_symmetric_and_self_free() {
        let lat = Lattice::zoned(12, 3, 2).unwrap();
        let table = NeighborTable::for_radius(&lat, 2.5);
        let grid = table.regions();
        for region in 0..grid.num_regions() as u32 {
            for &other in grid.neighbors(region) {
                assert_ne!(region, other, "self-loop at region {region}");
                assert!(
                    grid.neighbors(other).contains(&region),
                    "region edge {region}->{other} not symmetric"
                );
            }
        }
    }

    #[test]
    fn small_lattices_collapse_to_one_region() {
        let lat = Lattice::new(6);
        let table = NeighborTable::for_radius(&lat, 2.5);
        let grid = table.regions();
        assert_eq!(grid.dims(), (1, 1));
        assert_eq!(grid.sites_in(0).len(), 36);
        assert!(grid.neighbors(0).is_empty());
    }

    #[test]
    fn mega_lattice_resolves_to_a_coarse_graph() {
        let lat = Lattice::new(100);
        let table = NeighborTable::for_radius(&lat, 2.5);
        let grid = table.regions();
        assert_eq!(grid.dims(), (13, 13));
        // Interior regions touch their 8 Chebyshev neighbors (r = 2.5
        // never skips a region at side 8).
        let interior = 5 * 13 + 5;
        assert_eq!(grid.neighbors(interior).len(), 8);
    }

    #[test]
    fn ring_walk_partitions_the_grid_by_chebyshev_distance() {
        let (rx, ry) = (5u32, 4u32);
        for (cx, cy) in [(0, 0), (2, 1), (4, 3), (1, 3)] {
            let mut seen = vec![0u32; (rx * ry) as usize];
            let max_k = cx.max(rx - 1 - cx).max(cy.max(ry - 1 - cy));
            for k in 0..=max_k {
                RegionGrid::for_each_ring_region(rx, ry, cx, cy, k, &mut |x, y| {
                    assert_eq!(
                        x.abs_diff(cx).max(y.abs_diff(cy)),
                        k,
                        "ring {k} visited ({x},{y}) from ({cx},{cy})"
                    );
                    seen[(y * rx + x) as usize] += 1;
                });
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "rings must cover every region exactly once: {seen:?}"
            );
        }
    }

    #[test]
    fn ring_min_cells_lower_bounds_site_distance() {
        // Any site in a ring-k region is at least ring_min_cells away
        // (Chebyshev, hence Euclidean) from any point of the center
        // region.
        assert_eq!(RegionGrid::ring_min_cells(8, 0), 0);
        assert_eq!(RegionGrid::ring_min_cells(8, 1), 1);
        assert_eq!(RegionGrid::ring_min_cells(8, 2), 9);
        assert_eq!(RegionGrid::ring_min_cells(8, 3), 17);
    }

    proptest! {
        /// CSR slices equal the geometric enumeration — same sites, same
        /// nearest-first order — on square lattices.
        #[test]
        fn csr_equals_hood_around_square(side in 2u32..12, r in 0.5f64..4.0) {
            let lat = Lattice::new(side);
            let hood = Neighborhood::new(r);
            let table = NeighborTable::build(&lat, &hood);
            prop_assert_eq!(table.num_sites(), lat.num_sites());
            for idx in 0..lat.num_sites() {
                let expect = reference_neighbors(&lat, &hood, lat.site(idx));
                prop_assert_eq!(table.neighbors(idx), expect.as_slice());
            }
        }

        /// Same equivalence over zoned (banded) lattices, where the
        /// geometric path additionally filters lane rows.
        #[test]
        fn csr_equals_hood_around_zoned(side in 3u32..12, zone in 1u32..4,
                                        gap in 1u32..3, r in 0.5f64..4.0) {
            let lat = Lattice::zoned(side, zone, gap).unwrap();
            let hood = Neighborhood::new(r);
            let table = NeighborTable::build(&lat, &hood);
            prop_assert_eq!(table.num_sites(), lat.num_sites());
            for idx in 0..lat.num_sites() {
                let expect = reference_neighbors(&lat, &hood, lat.site(idx));
                prop_assert_eq!(table.neighbors(idx), expect.as_slice());
            }
        }

        /// Every listed edge really lies within the radius, and edges
        /// are symmetric (the interaction graph is undirected).
        #[test]
        fn csr_edges_within_radius_and_symmetric(side in 2u32..10, r in 0.5f64..3.5) {
            let lat = Lattice::new(side);
            let table = NeighborTable::for_radius(&lat, r);
            for idx in 0..lat.num_sites() {
                let here = lat.site(idx);
                for &n in table.neighbors(idx) {
                    prop_assert!(here.within(lat.site(n as usize), r));
                    prop_assert!(table.neighbors(n as usize).contains(&(idx as u32)));
                }
            }
        }
    }
}
