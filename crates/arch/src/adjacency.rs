//! CSR adjacency: precomputed in-bounds neighbor lists per
//! `(Lattice, Neighborhood)` pair.
//!
//! Every hot loop of the routing core used to enumerate lattice
//! neighbors geometrically — `hood.around(site)` offset arithmetic plus
//! a `Lattice::contains` bounds check and a `Lattice::index` dense-index
//! computation *per visited neighbor, per visit*. On the paper's
//! near-full 15×15 arrays (and beyond) that geometry math dominates BFS
//! and the routers' adjacency scans. [`NeighborTable`] resolves the
//! whole product once into one dense `offsets`/`neighbors` CSR pair:
//! the neighbors of dense site `i` are the slice
//! `neighbors[offsets[i]..offsets[i + 1]]`, already bounds-filtered and
//! already in dense-index form.
//!
//! The per-site neighbor order is exactly the order
//! `hood.around(site).filter(|s| lattice.contains(*s))` yields — the
//! disc's nearest-first `(d², dy, dx)` order — so consumers that switch
//! from the iterator to the table enumerate candidates in the identical
//! sequence (a load-bearing property for the routers' deterministic
//! tie-breaking).
//!
//! # Example
//!
//! ```
//! use na_arch::{Lattice, NeighborTable, Neighborhood, Site};
//! let lattice = Lattice::new(15);
//! let table = NeighborTable::build(&lattice, &Neighborhood::new(2.0));
//! // Interior sites see the full 12-site disc of Fig. 1a ...
//! let center = lattice.index(Site::new(7, 7));
//! assert_eq!(table.neighbors(center).len(), 12);
//! // ... corner sites only its in-bounds quarter.
//! let corner = lattice.index(Site::new(0, 0));
//! assert_eq!(table.neighbors(corner).len(), 5);
//! ```

use serde::{Deserialize, Serialize};

use crate::geometry::Neighborhood;
use crate::lattice::Lattice;

/// Precomputed CSR neighbor table of a lattice under a Euclidean
/// interaction radius: one `offsets`/`neighbors` pair over dense site
/// indices, replacing per-visit `Neighborhood::around` geometry math in
/// BFS, the routers' adjacency scans and the verifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborTable {
    lattice: Lattice,
    radius: f64,
    /// `offsets[i]..offsets[i + 1]` delimits site `i`'s neighbor slice.
    offsets: Vec<u32>,
    /// Dense site indices, per site in the disc's nearest-first order.
    neighbors: Vec<u32>,
}

impl NeighborTable {
    /// Resolves the `(lattice, hood)` product into a CSR table.
    ///
    /// Cost is `O(num_sites × hood.len())` — run once per compiler
    /// construction (or mapper call), never per routing round.
    pub fn build(lattice: &Lattice, hood: &Neighborhood) -> Self {
        let n = lattice.num_sites();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(n * hood.len());
        offsets.push(0u32);
        for idx in 0..n {
            let center = lattice.site(idx);
            for s in hood.around(center) {
                if lattice.contains(s) {
                    neighbors.push(lattice.index(s) as u32);
                }
            }
            offsets.push(neighbors.len() as u32);
        }
        NeighborTable {
            lattice: *lattice,
            radius: hood.radius(),
            offsets,
            neighbors,
        }
    }

    /// [`NeighborTable::build`] constructing the disc internally.
    pub fn for_radius(lattice: &Lattice, r: f64) -> Self {
        NeighborTable::build(lattice, &Neighborhood::new(r))
    }

    /// The lattice this table was built over.
    #[inline]
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// The Euclidean radius this table was built for.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of sites covered (rows of the CSR matrix).
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed adjacency entries.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The in-bounds neighbors of dense site index `idx`, nearest
    /// first — dense indices, already bounds-checked at build time.
    #[inline]
    pub fn neighbors(&self, idx: usize) -> &[u32] {
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Returns `true` when this table describes exactly the given
    /// `(lattice, radius)` pair — the staleness check for consumers that
    /// cache a table across calls.
    #[inline]
    pub fn matches(&self, lattice: &Lattice, r: f64) -> bool {
        self.lattice == *lattice && self.radius == r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Site;
    use proptest::prelude::*;

    fn reference_neighbors(lattice: &Lattice, hood: &Neighborhood, center: Site) -> Vec<u32> {
        hood.around(center)
            .filter(|s| lattice.contains(*s))
            .map(|s| lattice.index(s) as u32)
            .collect()
    }

    #[test]
    fn matches_reports_staleness() {
        let lat = Lattice::new(6);
        let table = NeighborTable::for_radius(&lat, 2.0);
        assert!(table.matches(&lat, 2.0));
        assert!(!table.matches(&lat, 2.5));
        assert!(!table.matches(&Lattice::new(7), 2.0));
        assert_eq!(table.num_sites(), 36);
    }

    #[test]
    fn interior_degree_matches_disc_size() {
        let lat = Lattice::new(9);
        for r in [1.0, std::f64::consts::SQRT_2, 2.0, 2.5] {
            let hood = Neighborhood::new(r);
            let table = NeighborTable::build(&lat, &hood);
            let center = lat.index(Site::new(4, 4));
            assert_eq!(table.neighbors(center).len(), hood.len(), "r = {r}");
        }
    }

    #[test]
    fn zoned_tables_skip_lane_rows() {
        let lat = Lattice::zoned(9, 2, 1).unwrap();
        let table = NeighborTable::for_radius(&lat, 2.0);
        for idx in 0..table.num_sites() {
            for &n in table.neighbors(idx) {
                let site = lat.site(n as usize);
                assert!(lat.is_trap_row(site.y), "lane site {site} in table");
            }
        }
    }

    proptest! {
        /// CSR slices equal the geometric enumeration — same sites, same
        /// nearest-first order — on square lattices.
        #[test]
        fn csr_equals_hood_around_square(side in 2u32..12, r in 0.5f64..4.0) {
            let lat = Lattice::new(side);
            let hood = Neighborhood::new(r);
            let table = NeighborTable::build(&lat, &hood);
            prop_assert_eq!(table.num_sites(), lat.num_sites());
            for idx in 0..lat.num_sites() {
                let expect = reference_neighbors(&lat, &hood, lat.site(idx));
                prop_assert_eq!(table.neighbors(idx), expect.as_slice());
            }
        }

        /// Same equivalence over zoned (banded) lattices, where the
        /// geometric path additionally filters lane rows.
        #[test]
        fn csr_equals_hood_around_zoned(side in 3u32..12, zone in 1u32..4,
                                        gap in 1u32..3, r in 0.5f64..4.0) {
            let lat = Lattice::zoned(side, zone, gap).unwrap();
            let hood = Neighborhood::new(r);
            let table = NeighborTable::build(&lat, &hood);
            prop_assert_eq!(table.num_sites(), lat.num_sites());
            for idx in 0..lat.num_sites() {
                let expect = reference_neighbors(&lat, &hood, lat.site(idx));
                prop_assert_eq!(table.neighbors(idx), expect.as_slice());
            }
        }

        /// Every listed edge really lies within the radius, and edges
        /// are symmetric (the interaction graph is undirected).
        #[test]
        fn csr_edges_within_radius_and_symmetric(side in 2u32..10, r in 0.5f64..3.5) {
            let lat = Lattice::new(side);
            let table = NeighborTable::for_radius(&lat, r);
            for idx in 0..lat.num_sites() {
                let here = lat.site(idx);
                for &n in table.neighbors(idx) {
                    prop_assert!(here.within(lat.site(n as usize), r));
                    prop_assert!(table.neighbors(n as usize).contains(&(idx as u32)));
                }
            }
        }
    }
}
