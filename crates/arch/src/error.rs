//! Error types for architecture construction and validation.

use std::error::Error;
use std::fmt;

use crate::coord::Site;

/// Errors raised when constructing or validating architecture objects.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArchError {
    /// A hardware parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A site lies outside the lattice bounds.
    SiteOutOfBounds {
        /// The offending site.
        site: Site,
        /// Side length of the lattice that rejected it.
        side: u32,
    },
    /// More atoms were requested than the lattice can hold (the paper
    /// requires at least one unoccupied coordinate, `μ = l² − 1 ≥ m`).
    TooManyAtoms {
        /// Requested atom count.
        atoms: u32,
        /// Number of available trap coordinates (`l²`).
        sites: u32,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidParameter { name, reason } => {
                write!(f, "invalid hardware parameter `{name}`: {reason}")
            }
            ArchError::SiteOutOfBounds { site, side } => {
                write!(f, "site {site} outside {side}x{side} lattice")
            }
            ArchError::TooManyAtoms { atoms, sites } => {
                write!(
                    f,
                    "cannot place {atoms} atoms on {sites} traps; at least one \
                     trap must remain free"
                )
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = ArchError::InvalidParameter {
            name: "r_int",
            reason: "must be positive".into(),
        };
        let text = err.to_string();
        assert!(text.contains("r_int"));
        assert!(text.starts_with("invalid"));
    }

    #[test]
    fn out_of_bounds_mentions_site() {
        let err = ArchError::SiteOutOfBounds {
            site: Site::new(20, 3),
            side: 15,
        };
        assert!(err.to_string().contains("(20, 3)"));
    }

    #[test]
    fn too_many_atoms_mentions_counts() {
        let err = ArchError::TooManyAtoms {
            atoms: 225,
            sites: 225,
        };
        let text = err.to_string();
        assert!(text.contains("225"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
