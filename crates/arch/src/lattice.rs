//! Trap topologies: the square lattice of SLM trap coordinates plus the
//! zoned storage/interaction layout.
//!
//! The paper evaluates on a regular `l × l` square lattice; real zoned
//! neutral-atom machines additionally interleave *trap-row bands* with
//! empty shuttling lanes. [`Lattice`] models both behind one API: a
//! bounding box of side `l` together with a [`LatticeKind`] deciding
//! which rows actually carry traps. All dense indexing (`idx = n-th trap
//! site in row-major order`) and bounds checks respect the topology, so
//! the mapper, scheduler and AOD validator are topology-agnostic.

use serde::{Deserialize, Serialize};

use crate::coord::Site;
use crate::error::ArchError;
use crate::geometry;

/// Which rows of the bounding box carry static traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatticeKind {
    /// Every row is a trap row — the paper's regular square lattice.
    Square,
    /// Rows repeat with period `zone_rows + gap_rows`: the first
    /// `zone_rows` rows of each period carry traps, the remaining
    /// `gap_rows` rows are empty shuttling lanes (zoned
    /// storage/interaction layout).
    Zoned {
        /// Trap rows per band (≥ 1).
        zone_rows: u32,
        /// Empty lane rows between bands (≥ 1).
        gap_rows: u32,
    },
}

/// A lattice of optical trap coordinates inside an `l × l` bounding box.
///
/// Sites are addressed by [`Site`] lattice coordinates with
/// `0 ≤ x, y < l` and `y` on a trap row of the [`LatticeKind`]. The
/// lattice also provides a dense index (row-major over *trap* sites)
/// used by the mapper for O(1) occupancy lookups.
///
/// # Example
///
/// ```
/// use na_arch::{Lattice, Site};
/// let lattice = Lattice::new(15);
/// assert_eq!(lattice.num_sites(), 225);
/// let s = Site::new(14, 14);
/// assert!(lattice.contains(s));
/// assert_eq!(lattice.site(lattice.index(s)), s);
///
/// // Zoned layout: bands of 2 trap rows separated by 1 empty lane.
/// let zoned = Lattice::zoned(7, 2, 1)?;
/// assert!(zoned.contains(Site::new(0, 1)));
/// assert!(!zoned.contains(Site::new(0, 2))); // shuttling lane
/// assert_eq!(zoned.num_sites(), 5 * 7);      // rows 0,1,3,4,6
/// # Ok::<(), na_arch::ArchError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lattice {
    side: u32,
    kind: LatticeKind,
}

impl Lattice {
    /// Creates an `side × side` square lattice.
    ///
    /// # Panics
    ///
    /// Panics if `side` is zero.
    pub fn new(side: u32) -> Self {
        assert!(side > 0, "lattice side must be positive");
        Lattice {
            side,
            kind: LatticeKind::Square,
        }
    }

    /// Creates a square lattice, rejecting a zero side with a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when `side` is zero.
    pub fn square(side: u32) -> Result<Self, ArchError> {
        if side == 0 {
            return Err(ArchError::InvalidParameter {
                name: "lattice_side",
                reason: "must be positive".into(),
            });
        }
        Ok(Lattice::new(side))
    }

    /// Creates a zoned lattice: bands of `zone_rows` trap rows separated
    /// by `gap_rows` empty shuttling lanes, inside a `side × side`
    /// bounding box.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when `side` is zero or
    /// either band parameter is zero.
    pub fn zoned(side: u32, zone_rows: u32, gap_rows: u32) -> Result<Self, ArchError> {
        if side == 0 {
            return Err(ArchError::InvalidParameter {
                name: "lattice_side",
                reason: "must be positive".into(),
            });
        }
        if zone_rows == 0 {
            return Err(ArchError::InvalidParameter {
                name: "zone_rows",
                reason: "a zoned lattice needs at least one trap row per band".into(),
            });
        }
        if gap_rows == 0 {
            return Err(ArchError::InvalidParameter {
                name: "gap_rows",
                reason: "a zoned lattice needs at least one lane row between bands \
                         (use a square lattice otherwise)"
                    .into(),
            });
        }
        // The band period is used in (checked) i32 row arithmetic; an
        // overflowing or absurd period is a description error, not a
        // panic.
        match zone_rows.checked_add(gap_rows) {
            Some(period) if period <= i32::MAX as u32 => {}
            _ => {
                return Err(ArchError::InvalidParameter {
                    name: "zone_rows",
                    reason: format!(
                        "band period {zone_rows} + {gap_rows} overflows the row coordinate range"
                    ),
                })
            }
        }
        Ok(Lattice {
            side,
            kind: LatticeKind::Zoned {
                zone_rows,
                gap_rows,
            },
        })
    }

    /// Side length `l` of the bounding box.
    #[inline]
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The trap-row topology.
    #[inline]
    pub fn kind(&self) -> LatticeKind {
        self.kind
    }

    /// Returns `true` if row `y` carries traps (bounds **not** checked).
    #[inline]
    pub fn is_trap_row(&self, y: i32) -> bool {
        match self.kind {
            LatticeKind::Square => true,
            LatticeKind::Zoned {
                zone_rows,
                gap_rows,
            } => y.rem_euclid((zone_rows + gap_rows) as i32) < zone_rows as i32,
        }
    }

    /// Number of trap rows inside the bounding box.
    #[inline]
    pub fn trap_rows(&self) -> u32 {
        match self.kind {
            LatticeKind::Square => self.side,
            LatticeKind::Zoned {
                zone_rows,
                gap_rows,
            } => {
                let period = zone_rows + gap_rows;
                (self.side / period) * zone_rows + (self.side % period).min(zone_rows)
            }
        }
    }

    /// Total number of trap coordinates (`l²` on the square lattice).
    #[inline]
    pub fn num_sites(&self) -> usize {
        (self.trap_rows() as usize) * (self.side as usize)
    }

    /// Returns `true` if `site` is a trap coordinate of this lattice.
    #[inline]
    pub fn contains(&self, site: Site) -> bool {
        site.x >= 0
            && site.y >= 0
            && (site.x as u32) < self.side
            && (site.y as u32) < self.side
            && self.is_trap_row(site.y)
    }

    /// Validates that `site` is a trap coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::SiteOutOfBounds`] if the site lies outside the
    /// lattice (or on a shuttling lane of a zoned layout).
    pub fn check(&self, site: Site) -> Result<(), ArchError> {
        if self.contains(site) {
            Ok(())
        } else {
            Err(ArchError::SiteOutOfBounds {
                site,
                side: self.side,
            })
        }
    }

    /// Number of trap rows strictly below row `y` (which must be a trap
    /// row).
    #[inline]
    fn trap_rows_before(&self, y: i32) -> usize {
        match self.kind {
            LatticeKind::Square => y as usize,
            LatticeKind::Zoned {
                zone_rows,
                gap_rows,
            } => {
                let period = (zone_rows + gap_rows) as i32;
                ((y / period) * zone_rows as i32 + (y % period).min(zone_rows as i32)) as usize
            }
        }
    }

    /// Dense index of `site` (row-major over trap sites; `y·l + x` on the
    /// square lattice).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the site is not a trap coordinate (use
    /// [`Lattice::contains`] to check first when handling untrusted
    /// coordinates).
    #[inline]
    pub fn index(&self, site: Site) -> usize {
        debug_assert!(self.contains(site), "site {site} out of bounds");
        self.trap_rows_before(site.y) * (self.side as usize) + (site.x as usize)
    }

    /// The trap site at dense index `idx` (inverse of [`Lattice::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx ≥ num_sites()`.
    #[inline]
    pub fn site(&self, idx: usize) -> Site {
        assert!(idx < self.num_sites(), "site index {idx} out of bounds");
        let l = self.side as usize;
        let (x, row) = (idx % l, idx / l);
        let y = match self.kind {
            LatticeKind::Square => row,
            LatticeKind::Zoned {
                zone_rows,
                gap_rows,
            } => {
                let (zone, gap) = (zone_rows as usize, gap_rows as usize);
                (row / zone) * (zone + gap) + row % zone
            }
        };
        Site::new(x as i32, y as i32)
    }

    /// Iterates over all trap sites in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Site> + '_ {
        let l = self.side as i32;
        (0..l)
            .filter(move |&y| self.is_trap_row(y))
            .flat_map(move |y| (0..l).map(move |x| Site::new(x, y)))
    }

    /// All trap sites within Euclidean radius `r` (units of `d`) of
    /// `center`, excluding `center` itself, in order of increasing
    /// distance.
    ///
    /// For hot paths prefer precomputing a
    /// [`Neighborhood`](crate::geometry::Neighborhood) and offsetting it.
    pub fn sites_within(&self, center: Site, r: f64) -> Vec<Site> {
        let reach = r.floor() as i32 + 1;
        let mut out: Vec<Site> = Vec::new();
        for dy in -reach..=reach {
            for dx in -reach..=reach {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let s = Site::new(center.x + dx, center.y + dy);
                if self.contains(s) && center.within(s, r) {
                    out.push(s);
                }
            }
        }
        out.sort_by(|a, b| {
            center
                .distance_sq(*a)
                .cmp(&center.distance_sq(*b))
                .then(a.cmp(b))
        });
        out
    }

    /// The largest `m` for which `m` trap sites pairwise within radius
    /// `r` exist on this topology (unbounded in `x`/band pattern in `y`,
    /// ignoring the bounding box like
    /// [`geometry::max_cluster_size`] does), capped at `cap` — i.e. the
    /// largest `CᵐZ` gate geometrically realizable.
    ///
    /// On the square lattice this is exactly
    /// [`geometry::max_cluster_size`]; on a zoned layout the band height
    /// caps how many rows a cluster may span.
    pub fn cluster_capacity(&self, r: f64, cap: usize) -> usize {
        match self.kind {
            LatticeKind::Square => geometry::max_cluster_size(r, cap),
            LatticeKind::Zoned { zone_rows, .. } => {
                let hood = geometry::Neighborhood::new(r);
                let mut best = 1;
                // Try every anchor row phase within a band; the plane is
                // x-unbounded, so only the y phase matters.
                for phase in 0..zone_rows as i32 {
                    let anchor = Site::new(0, phase);
                    let candidates: Vec<Site> = hood
                        .around(anchor)
                        .filter(|s| self.is_trap_row(s.y))
                        .collect();
                    while best < cap
                        && geometry::cluster_exists_among(anchor, &candidates, best + 1, r)
                    {
                        best += 1;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn index_roundtrip() {
        let lat = Lattice::new(15);
        for idx in 0..lat.num_sites() {
            assert_eq!(lat.index(lat.site(idx)), idx);
        }
    }

    #[test]
    fn contains_bounds() {
        let lat = Lattice::new(3);
        assert!(lat.contains(Site::new(0, 0)));
        assert!(lat.contains(Site::new(2, 2)));
        assert!(!lat.contains(Site::new(3, 0)));
        assert!(!lat.contains(Site::new(0, -1)));
    }

    #[test]
    fn check_returns_error_out_of_bounds() {
        let lat = Lattice::new(3);
        assert!(lat.check(Site::new(1, 1)).is_ok());
        assert!(matches!(
            lat.check(Site::new(5, 1)),
            Err(ArchError::SiteOutOfBounds { .. })
        ));
    }

    #[test]
    fn iter_visits_all_sites_once() {
        let lat = Lattice::new(4);
        let sites: Vec<_> = lat.iter().collect();
        assert_eq!(sites.len(), 16);
        let mut dedup = sites.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    /// Fig. 1a of the paper: for r_int = 2d the interaction candidates of a
    /// central site are the 12 sites of the radius-2 disc (excluding the
    /// center).
    #[test]
    fn vicinity_radius_two_has_twelve_sites() {
        let lat = Lattice::new(9);
        let center = Site::new(4, 4);
        let v = lat.sites_within(center, 2.0);
        assert_eq!(v.len(), 12);
        // Nearest neighbours come first.
        assert_eq!(center.distance_sq(v[0]), 1);
    }

    #[test]
    fn vicinity_radius_sqrt2_is_eight_neighbourhood() {
        let lat = Lattice::new(9);
        let v = lat.sites_within(Site::new(4, 4), std::f64::consts::SQRT_2);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn vicinity_clipped_at_border() {
        let lat = Lattice::new(9);
        let v = lat.sites_within(Site::new(0, 0), 2.0);
        // Quarter of the disc: (1,0),(0,1),(1,1),(2,0),(0,2)
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn zoned_constructor_validates() {
        assert!(Lattice::zoned(0, 2, 1).is_err());
        assert!(Lattice::zoned(6, 0, 1).is_err());
        assert!(Lattice::zoned(6, 2, 0).is_err());
        assert!(Lattice::zoned(6, 2, 1).is_ok());
        assert!(Lattice::square(0).is_err());
        assert_eq!(Lattice::square(4).unwrap(), Lattice::new(4));
        // Overflowing band periods are a typed error, not a later panic
        // in `trap_rows` (u32 wrap → divide by zero).
        assert!(Lattice::zoned(6, u32::MAX, 1).is_err());
        assert!(Lattice::zoned(6, 1, u32::MAX).is_err());
        assert!(Lattice::zoned(6, i32::MAX as u32, 1).is_err());
    }

    #[test]
    fn zoned_trap_rows_and_sites() {
        // side 7, bands of 2 rows, lanes of 1: trap rows 0,1,3,4,6.
        let lat = Lattice::zoned(7, 2, 1).unwrap();
        assert_eq!(lat.trap_rows(), 5);
        assert_eq!(lat.num_sites(), 35);
        for y in [0, 1, 3, 4, 6] {
            assert!(lat.is_trap_row(y), "row {y} should carry traps");
        }
        for y in [2, 5] {
            assert!(!lat.is_trap_row(y), "row {y} is a lane");
            assert!(!lat.contains(Site::new(0, y)));
        }
    }

    #[test]
    fn zoned_index_roundtrip_and_row_major_order() {
        let lat = Lattice::zoned(7, 2, 1).unwrap();
        for idx in 0..lat.num_sites() {
            assert_eq!(lat.index(lat.site(idx)), idx);
        }
        // Dense order is row-major over trap rows: site 7 starts row 1,
        // site 14 starts row 3 (row 2 is a lane).
        assert_eq!(lat.site(0), Site::new(0, 0));
        assert_eq!(lat.site(7), Site::new(0, 1));
        assert_eq!(lat.site(14), Site::new(0, 3));
        let sites: Vec<_> = lat.iter().collect();
        assert_eq!(sites.len(), lat.num_sites());
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(lat.index(*s), i);
        }
    }

    #[test]
    fn zoned_vicinity_excludes_lanes() {
        let lat = Lattice::zoned(9, 2, 1).unwrap();
        let v = lat.sites_within(Site::new(4, 1), 2.0);
        assert!(v.iter().all(|s| lat.contains(*s)));
        assert!(v.iter().all(|s| s.y != 2 && s.y != 5), "lane rows empty");
        // Row 3 (next band) is reachable at distance 2.
        assert!(v.contains(&Site::new(4, 3)));
    }

    #[test]
    fn cluster_capacity_square_matches_geometry() {
        for r in [1.0, std::f64::consts::SQRT_2, 2.0, 2.5, 4.5] {
            assert_eq!(
                Lattice::new(15).cluster_capacity(r, 8),
                geometry::max_cluster_size(r, 8),
            );
        }
    }

    #[test]
    fn cluster_capacity_zoned_capped_by_band_height() {
        // Single-row bands at r = √2: clusters may span one row only, so
        // at most 2 sites are pairwise within range (a 2x2 block needs
        // two adjacent rows and gives 4 on the square lattice).
        let single = Lattice::zoned(9, 1, 2).unwrap();
        assert_eq!(single.cluster_capacity(std::f64::consts::SQRT_2, 8), 2);
        assert_eq!(
            Lattice::new(9).cluster_capacity(std::f64::consts::SQRT_2, 8),
            4
        );
        // Two-row bands recover the 2x2 block.
        let paired = Lattice::zoned(9, 2, 1).unwrap();
        assert_eq!(paired.cluster_capacity(std::f64::consts::SQRT_2, 8), 4);
    }

    proptest! {
        #[test]
        fn sites_within_respects_radius(cx in 0i32..9, cy in 0i32..9, r in 0.5f64..4.0) {
            let lat = Lattice::new(9);
            let center = Site::new(cx, cy);
            for s in lat.sites_within(center, r) {
                prop_assert!(center.within(s, r));
                prop_assert!(lat.contains(s));
                prop_assert!(s != center);
            }
        }

        #[test]
        fn zoned_index_roundtrip_random(side in 3u32..12, zone in 1u32..4, gap in 1u32..3) {
            let lat = Lattice::zoned(side, zone, gap).unwrap();
            prop_assert_eq!(lat.iter().count(), lat.num_sites());
            for idx in 0..lat.num_sites() {
                let s = lat.site(idx);
                prop_assert!(lat.contains(s));
                prop_assert_eq!(lat.index(s), idx);
            }
        }
    }
}
