//! The square lattice of SLM trap coordinates.

use serde::{Deserialize, Serialize};

use crate::coord::Site;
use crate::error::ArchError;

/// A regular `l × l` square lattice of optical trap coordinates.
///
/// Sites are addressed by [`Site`] lattice coordinates with
/// `0 ≤ x, y < l`. The lattice also provides a dense index
/// (`idx = y·l + x`) used by the mapper for O(1) occupancy lookups.
///
/// # Example
///
/// ```
/// use na_arch::{Lattice, Site};
/// let lattice = Lattice::new(15);
/// assert_eq!(lattice.num_sites(), 225);
/// let s = Site::new(14, 14);
/// assert!(lattice.contains(s));
/// assert_eq!(lattice.site(lattice.index(s)), s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lattice {
    side: u32,
}

impl Lattice {
    /// Creates an `side × side` lattice.
    ///
    /// # Panics
    ///
    /// Panics if `side` is zero.
    pub fn new(side: u32) -> Self {
        assert!(side > 0, "lattice side must be positive");
        Lattice { side }
    }

    /// Side length `l` of the lattice.
    #[inline]
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Total number of trap coordinates, `l²`.
    #[inline]
    pub fn num_sites(&self) -> usize {
        (self.side as usize) * (self.side as usize)
    }

    /// Returns `true` if `site` lies within the lattice bounds.
    #[inline]
    pub fn contains(&self, site: Site) -> bool {
        site.x >= 0 && site.y >= 0 && (site.x as u32) < self.side && (site.y as u32) < self.side
    }

    /// Validates that `site` is in bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::SiteOutOfBounds`] if the site lies outside the
    /// lattice.
    pub fn check(&self, site: Site) -> Result<(), ArchError> {
        if self.contains(site) {
            Ok(())
        } else {
            Err(ArchError::SiteOutOfBounds {
                site,
                side: self.side,
            })
        }
    }

    /// Dense index of `site` (`y·l + x`).
    ///
    /// # Panics
    ///
    /// Panics if the site is out of bounds (use [`Lattice::contains`] to
    /// check first when handling untrusted coordinates).
    #[inline]
    pub fn index(&self, site: Site) -> usize {
        debug_assert!(self.contains(site), "site {site} out of bounds");
        (site.y as usize) * (self.side as usize) + (site.x as usize)
    }

    /// The site at dense index `idx` (inverse of [`Lattice::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx ≥ l²`.
    #[inline]
    pub fn site(&self, idx: usize) -> Site {
        assert!(idx < self.num_sites(), "site index {idx} out of bounds");
        let l = self.side as usize;
        Site::new((idx % l) as i32, (idx / l) as i32)
    }

    /// Iterates over all sites in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Site> + '_ {
        let l = self.side as i32;
        (0..l).flat_map(move |y| (0..l).map(move |x| Site::new(x, y)))
    }

    /// All in-bounds sites within Euclidean radius `r` (units of `d`) of
    /// `center`, excluding `center` itself, in order of increasing
    /// distance.
    ///
    /// For hot paths prefer precomputing a
    /// [`Neighborhood`](crate::geometry::Neighborhood) and offsetting it.
    pub fn sites_within(&self, center: Site, r: f64) -> Vec<Site> {
        let reach = r.floor() as i32 + 1;
        let mut out: Vec<Site> = Vec::new();
        for dy in -reach..=reach {
            for dx in -reach..=reach {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let s = Site::new(center.x + dx, center.y + dy);
                if self.contains(s) && center.within(s, r) {
                    out.push(s);
                }
            }
        }
        out.sort_by(|a, b| {
            center
                .distance_sq(*a)
                .cmp(&center.distance_sq(*b))
                .then(a.cmp(b))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn index_roundtrip() {
        let lat = Lattice::new(15);
        for idx in 0..lat.num_sites() {
            assert_eq!(lat.index(lat.site(idx)), idx);
        }
    }

    #[test]
    fn contains_bounds() {
        let lat = Lattice::new(3);
        assert!(lat.contains(Site::new(0, 0)));
        assert!(lat.contains(Site::new(2, 2)));
        assert!(!lat.contains(Site::new(3, 0)));
        assert!(!lat.contains(Site::new(0, -1)));
    }

    #[test]
    fn check_returns_error_out_of_bounds() {
        let lat = Lattice::new(3);
        assert!(lat.check(Site::new(1, 1)).is_ok());
        assert!(matches!(
            lat.check(Site::new(5, 1)),
            Err(ArchError::SiteOutOfBounds { .. })
        ));
    }

    #[test]
    fn iter_visits_all_sites_once() {
        let lat = Lattice::new(4);
        let sites: Vec<_> = lat.iter().collect();
        assert_eq!(sites.len(), 16);
        let mut dedup = sites.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    /// Fig. 1a of the paper: for r_int = 2d the interaction candidates of a
    /// central site are the 12 sites of the radius-2 disc (excluding the
    /// center).
    #[test]
    fn vicinity_radius_two_has_twelve_sites() {
        let lat = Lattice::new(9);
        let center = Site::new(4, 4);
        let v = lat.sites_within(center, 2.0);
        assert_eq!(v.len(), 12);
        // Nearest neighbours come first.
        assert_eq!(center.distance_sq(v[0]), 1);
    }

    #[test]
    fn vicinity_radius_sqrt2_is_eight_neighbourhood() {
        let lat = Lattice::new(9);
        let v = lat.sites_within(Site::new(4, 4), std::f64::consts::SQRT_2);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn vicinity_clipped_at_border() {
        let lat = Lattice::new(9);
        let v = lat.sites_within(Site::new(0, 0), 2.0);
        // Quarter of the disc: (1,0),(0,1),(1,1),(2,0),(0,2)
        assert_eq!(v.len(), 5);
    }

    proptest! {
        #[test]
        fn sites_within_respects_radius(cx in 0i32..9, cy in 0i32..9, r in 0.5f64..4.0) {
            let lat = Lattice::new(9);
            let center = Site::new(cx, cy);
            for s in lat.sites_within(center, r) {
                prop_assert!(center.within(s, r));
                prop_assert!(lat.contains(s));
                prop_assert!(s != center);
            }
        }
    }
}
