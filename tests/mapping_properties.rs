//! Property-based integration tests: random circuits and random hardware
//! shapes must always produce verifiable mappings.

use hybrid_na::prelude::*;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = MapperConfig> {
    prop_oneof![
        Just(MapperConfig::shuttle_only()),
        Just(MapperConfig::gate_only()),
        (0.1f64..10.0).prop_map(|a| MapperConfig::try_hybrid(a).expect("valid alpha")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random circuit on any mode maps to a stream that replays
    /// cleanly against the physics model.
    #[test]
    fn random_circuits_always_verify(
        seed in 0u64..1000,
        layers in 1usize..8,
        config in arb_config(),
    ) {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(6, 3.0)
            .num_atoms(24)
            .build()
            .expect("valid");
        let circuit = RandomCircuit::new(18)
            .layers(layers)
            .multi_qubit_fraction(0.2)
            .seed(seed)
            .build();
        let mapper = HybridMapper::new(params.clone(), config).expect("valid");
        let outcome = mapper.map(&circuit).expect("mappable");
        verify_mapping(&circuit, &outcome.mapped, &params).expect("verified");
    }

    /// The scheduler never reorders atom usage: makespan bounds every
    /// item and idle time is non-negative.
    #[test]
    fn schedule_invariants_hold(seed in 0u64..1000) {
        let params = HardwareParams::shuttling()
            .to_builder()
            .lattice(6, 3.0)
            .num_atoms(24)
            .build()
            .expect("valid");
        let circuit = RandomCircuit::new(18).layers(5).seed(seed).build();
        let mapper = HybridMapper::new(params.clone(), MapperConfig::try_hybrid(1.0).expect("valid alpha"))
            .expect("valid");
        let outcome = mapper.map(&circuit).expect("mappable");
        let schedule = Scheduler::new(params.clone()).schedule_mapped(&outcome.mapped);
        for item in &schedule.items {
            prop_assert!(item.start_us() >= 0.0);
            prop_assert!(item.end_us() <= schedule.makespan_us + 1e-9);
        }
        let metrics = ScheduleMetrics::of(&schedule, &params);
        prop_assert!(metrics.idle_us >= 0.0);
        prop_assert!(metrics.log10_success <= 0.0);
    }

    /// Radius monotonicity: a larger interaction radius never increases
    /// the number of SWAPs needed by the gate-only router.
    #[test]
    fn larger_radius_routes_with_fewer_swaps(seed in 0u64..200) {
        let circuit = GraphState::new(16).edges(24).seed(seed).build();
        let mut last = usize::MAX;
        for r in [2.0, 3.0, 4.5] {
            let params = HardwareParams::gate_based()
                .to_builder()
                .lattice(6, 3.0)
                .num_atoms(20)
                .radius(r)
                .build()
                .expect("valid");
            let mapper = HybridMapper::new(params, MapperConfig::gate_only())
                .expect("valid");
            let swaps = mapper.map(&circuit).expect("mappable").mapped.swap_count();
            // Heuristic, so allow slack; the trend must be clear.
            prop_assert!(swaps <= last.saturating_add(2),
                "r={r}: {swaps} swaps, previous {last}");
            last = swaps;
        }
    }
}
