//! Public-API snapshot: the facade prelude's export list is pinned so
//! future PRs cannot silently drop or rename pieces of the redesigned
//! surface. Extending the prelude is fine — update `EXPECTED` in the
//! same PR and the diff documents the API change.

/// Every identifier `hybrid_na::prelude` must re-export, sorted.
const EXPECTED: &[&str] = &[
    "AodConstraints",
    "CacheStats",
    "CancelReason",
    "CancelToken",
    "Circuit",
    "ComparisonReport",
    "CompileError",
    "CompileRequest",
    "CompileResponse",
    "CompileScratch",
    "CompileService",
    "CompileStats",
    "CompiledProgram",
    "Compiler",
    "ConfigError",
    "DistanceCache",
    "FaultPlan",
    "GateKind",
    "GraphState",
    "HardwareParams",
    "HttpOptions",
    "HttpServer",
    "HybridMapper",
    "IncrementalScheduler",
    "InitialLayout",
    "Lattice",
    "LatticeKind",
    "MapError",
    "MapScratch",
    "MappedCircuit",
    "MappedOp",
    "MapperConfig",
    "MappingOptions",
    "MappingOutcome",
    "Move",
    "NativeGateSet",
    "NeighborTable",
    "Neighborhood",
    "OpSink",
    "Operation",
    "Pipeline",
    "PipelineError",
    "Qaoa",
    "Qft",
    "Qpe",
    "Qubit",
    "RandomCircuit",
    "RegionGrid",
    "RetryPolicy",
    "Reversible",
    "RoundMode",
    "Schedule",
    "ScheduleError",
    "ScheduleMetrics",
    "Scheduler",
    "SchedulingOptions",
    "ServeConfig",
    "Site",
    "StateJournal",
    "Statevector",
    "SubmitError",
    "Target",
    "TargetResolver",
    "TargetSpec",
    "ZonedTarget",
    "cuccaro_adder",
    "decompose_to_native",
    "error_to_json",
    "ghz",
    "handle_json",
    "handle_json_document",
    "qasm",
    "serve_lines",
    "verify_mapping",
    "verify_mapping_on",
    "with_request_id",
];

/// Extracts the identifiers re-exported by the `pub mod prelude` block
/// of the facade source.
fn prelude_exports() -> Vec<String> {
    let source = include_str!("../src/lib.rs");
    let start = source
        .find("pub mod prelude")
        .expect("facade declares a prelude");
    let block = &source[start..];
    let mut names = Vec::new();
    for line_block in block.split("pub use ") {
        // Each `pub use path::{A, B, c};` or `pub use path::Name;`.
        let Some(end) = line_block.find(';') else {
            continue;
        };
        let spec = &line_block[..end];
        if !spec.contains("::") {
            continue;
        }
        let items: &str = match (spec.find('{'), spec.rfind('}')) {
            (Some(open), Some(close)) => &spec[open + 1..close],
            _ => spec.rsplit("::").next().expect("path has a tail"),
        };
        for item in items.split(',') {
            let name = item.trim();
            if !name.is_empty() {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

#[test]
fn prelude_matches_snapshot() {
    let actual = prelude_exports();
    let expected: Vec<String> = EXPECTED.iter().map(|s| s.to_string()).collect();
    let missing: Vec<_> = expected.iter().filter(|n| !actual.contains(n)).collect();
    let extra: Vec<_> = actual.iter().filter(|n| !expected.contains(n)).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "prelude drifted from the snapshot.\n  missing: {missing:?}\n  \
         unexpected: {extra:?}\n(update EXPECTED in tests/api_surface.rs \
         deliberately when changing the public surface)"
    );
}

/// The snapshot itself must name the redesigned surface — a regression
/// here means the new API was removed, not merely renamed.
#[test]
fn snapshot_contains_the_target_api() {
    for required in [
        "Compiler",
        "MappingOptions",
        "SchedulingOptions",
        "CompileError",
        "Target",
        "TargetSpec",
        "ZonedTarget",
        "CompileRequest",
        "CompileResponse",
    ] {
        assert!(EXPECTED.contains(&required), "{required} missing");
    }
}

/// Compile-time usage check: every snapshot name resolves through the
/// prelude (a typo in the snapshot or a broken re-export fails here).
#[allow(unused_imports)]
mod resolves {
    use hybrid_na::prelude::{
        cuccaro_adder, decompose_to_native, error_to_json, ghz, handle_json, handle_json_document,
        qasm, serve_lines, verify_mapping, verify_mapping_on, with_request_id, AodConstraints,
        CancelReason, CancelToken, Circuit, ComparisonReport, CompileError, CompileRequest,
        CompileResponse, CompileScratch, CompileService, CompileStats, CompiledProgram, Compiler,
        ConfigError, FaultPlan, GateKind, GraphState, HardwareParams, HttpOptions, HttpServer,
        HybridMapper, IncrementalScheduler, InitialLayout, Lattice, LatticeKind, MapError,
        MapScratch, MappedCircuit, MappedOp, MapperConfig, MappingOptions, MappingOutcome, Move,
        NativeGateSet, Neighborhood, OpSink, Operation, Pipeline, PipelineError, Qaoa, Qft, Qpe,
        Qubit, RandomCircuit, RetryPolicy, Reversible, RoundMode, Schedule, ScheduleError,
        ScheduleMetrics, Scheduler, SchedulingOptions, ServeConfig, Site, StateJournal,
        Statevector, SubmitError, Target, TargetResolver, TargetSpec, ZonedTarget,
    };
}
