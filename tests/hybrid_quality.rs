//! The paper's headline claim, as a regression test: on the Table 1
//! presets, the hybrid engine (best decision ratio α, the paper's §4.1
//! procedure) never loses fidelity against the better of the two pure
//! modes.

use hybrid_na::prelude::*;
use na_bench::{run_experiment, run_hybrid_alpha_sweep, scaled_preset, scaled_suite};

/// Default α grid extended with extreme ratios so the sweep brackets
/// both pure modes' decision behavior.
fn alpha_grid() -> Vec<f64> {
    let mut grid = na_bench::default_alpha_grid();
    grid.insert(0, 1e-30);
    grid.push(1e30);
    grid
}

#[test]
fn hybrid_sweep_at_least_as_good_as_pure_modes() {
    for preset in HardwareParams::table1_presets() {
        let params = scaled_preset(preset, 0.12);
        // Two-qubit-gate circuits (graph, approximate QFT/QPE): mappable
        // in every mode on every preset radius.
        for (name, circuit) in scaled_suite(0.1, params.num_atoms).into_iter().take(3) {
            let hybrid = run_hybrid_alpha_sweep(&params, &circuit, &alpha_grid())
                .unwrap_or_else(|e| panic!("{name}@{}: hybrid failed: {e}", params.name));
            let pure_best = [MapperConfig::gate_only(), MapperConfig::shuttle_only()]
                .into_iter()
                .filter_map(|config| {
                    run_experiment(&params, &circuit, config)
                        .ok()
                        .map(|r| r.delta_f)
                })
                .fold(f64::INFINITY, f64::min);
            assert!(
                hybrid.delta_f <= pure_best + 1e-9,
                "{name}@{}: hybrid δF {} worse than best pure δF {}",
                params.name,
                hybrid.delta_f,
                pure_best
            );
        }
    }
}

/// The δF ordering the paper reports for its presets holds at small
/// scale too: on shuttling-optimized hardware the hybrid solution uses
/// moves, on gate-optimized hardware it uses SWAPs.
#[test]
fn hybrid_adapts_to_hardware_preset() {
    // Large enough that even the gate preset's r_int = 4.5 cannot span
    // the lattice (no routing at all would make the assertions vacuous).
    let shuttling = scaled_preset(HardwareParams::shuttling(), 0.25);
    let gate_based = scaled_preset(HardwareParams::gate_based(), 0.25);
    let circuit = Qft::new(24).build();
    let on_shuttling = run_experiment(
        &shuttling,
        &circuit,
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .expect("mappable");
    let on_gate_based = run_experiment(
        &gate_based,
        &circuit,
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .expect("mappable");
    assert!(
        on_shuttling.moves > 0,
        "shuttling-optimized hardware should route with moves"
    );
    assert!(
        on_gate_based.swaps > 0,
        "gate-optimized hardware should route with SWAPs"
    );
}
