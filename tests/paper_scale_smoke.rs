//! Tier-1-cheap paper-scale smoke test: one QFT-64 compiled end-to-end
//! on the paper's 15×15/200-atom machine through the `Compiler`
//! session, with the mapping replayed through the independent verifier.
//!
//! Every other regression guard runs on 6×6 scale models; this is the
//! one tier-1 test that exercises the hot path at the lattice size the
//! paper actually evaluates (near-full 15×15, §4), so asymptotic
//! regressions (accidental O(sites) scans per round, quadratic
//! frontier work) surface as a timeout here rather than only in the
//! bench tier. The mega case (QFT-128 on 100×100/4500 atoms) does the
//! same one order of magnitude up, where only the hierarchical
//! coarse-to-fine routing keeps the compile tractable.

use hybrid_na::prelude::*;
use na_mapper::verify::verify_mapping_on;

#[test]
fn qft64_compiles_clean_on_paper_machine() {
    // The mixed Table-1c preset IS the paper machine: 15×15, 200 atoms.
    let target = HardwareParams::mixed();
    assert_eq!(target.lattice().num_sites(), 225);
    assert_eq!(target.num_atoms, 200);

    let compiler = Compiler::for_target(&target)
        .mapping(MappingOptions::hybrid(1.0))
        .baseline(false)
        .build()
        .expect("valid session");
    let circuit = Qft::new(64).build();
    let program = compiler.compile(&circuit).expect("compiles at paper scale");

    // Every gate executed, physically valid placement throughout.
    verify_mapping_on(&circuit, &program.mapped, &target, target.lattice())
        .expect("verify-clean mapping");

    // The schedule and AOD lowering cover the whole stream.
    assert!(program.schedule.len() >= circuit.len());
    assert!(program.metrics.makespan_us > 0.0);
    assert!(
        program.mapped.shuttle_count() > 0 || program.mapped.swap_count() > 0,
        "QFT-64 on a near-full lattice must require routing"
    );
}

#[test]
fn qft128_compiles_clean_on_mega_machine() {
    // An order of magnitude past the paper machine: 100×100 lattice,
    // 4500 atoms — the scale the hierarchical region router targets.
    let target = HardwareParams::mixed()
        .to_builder()
        .lattice(100, 3.0)
        .num_atoms(4500)
        .build()
        .expect("valid");
    assert_eq!(target.lattice().num_sites(), 10_000);

    let compiler = Compiler::for_target(&target)
        .mapping(MappingOptions::hybrid(1.0))
        .baseline(false)
        .build()
        .expect("valid session");
    let circuit = Qft::new(128).build();
    let program = compiler.compile(&circuit).expect("compiles at mega scale");

    // Every gate executed, physically valid placement throughout.
    verify_mapping_on(&circuit, &program.mapped, &target, target.lattice())
        .expect("verify-clean mapping");

    // Replay every AOD transaction against the evolving occupancy and
    // validate it independently of the compiler's own check.
    let mut site_of_atom = compiler
        .config()
        .initial_layout
        .place(&target.lattice(), program.mapped.num_atoms);
    let mut batches = 0;
    for item in &program.schedule.items {
        if let na_schedule::ScheduledItem::AodBatch { moves, .. } = item {
            let lowered = na_schedule::lower_batch(moves);
            na_schedule::validate_program(&lowered, &target.lattice(), &site_of_atom)
                .unwrap_or_else(|e| panic!("batch {batches} fails validation: {e}"));
            for m in moves {
                site_of_atom[m.atom.index()] = m.to;
            }
            batches += 1;
        }
    }
    assert_eq!(batches, program.aod_programs.len());

    // The distance-cache memory bound holds at mega scale (and is
    // reported through the compile stats).
    assert!(
        program.stats.route_cache.peak_entries
            <= na_mapper::DistanceCache::MAX_RESIDENT_FIELDS as u64,
        "cache residency {} exceeds the LRU cap",
        program.stats.route_cache.peak_entries,
    );
}

#[test]
fn qaoa80_maps_clean_on_paper_machine() {
    let target = HardwareParams::mixed();
    let mapper = HybridMapper::new(
        target.clone(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .expect("valid");
    let circuit = Qaoa::new(80).edges(120).layers(2).seed(7).build();
    let outcome = mapper.map(&circuit).expect("mappable");
    verify_mapping_on(&circuit, &outcome.mapped, &target, target.lattice())
        .expect("verify-clean mapping");
}
