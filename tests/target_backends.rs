//! Cross-target acceptance tests for the `Target`-centric compiler API:
//! the same circuits compile end-to-end on two distinct topologies
//! (square and zoned), the tier-1 invariants (verify-clean mapping,
//! per-batch `validate_program`) hold on both, the JSON job layer
//! round-trips, and the builder rejects invalid sessions with typed
//! errors.

use hybrid_na::prelude::*;
use na_schedule::ScheduledItem;
use proptest::prelude::*;

fn square_target(side: u32, atoms: u32) -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(side, 3.0)
        .num_atoms(atoms)
        .build()
        .expect("valid")
}

fn zoned_target(side: u32, atoms: u32) -> ZonedTarget {
    ZonedTarget::new(square_target(side, atoms), 2, 1).expect("fits")
}

/// Replays every AOD transaction of `program` against the target's
/// lattice occupancy and validates it — the tier-1 per-batch invariant.
fn validate_batches(program: &CompiledProgram, lattice: Lattice, layout: InitialLayout) {
    let mut site_of_atom = layout.place(&lattice, program.mapped.num_atoms);
    let mut batches = 0;
    for item in &program.schedule.items {
        if let ScheduledItem::AodBatch { moves, .. } = item {
            let lowered = na_schedule::lower_batch(moves);
            na_schedule::validate_program(&lowered, &lattice, &site_of_atom)
                .unwrap_or_else(|e| panic!("batch {batches} fails validation: {e}"));
            for m in moves {
                site_of_atom[m.atom.index()] = m.to;
            }
            batches += 1;
        }
    }
    assert_eq!(batches, program.aod_programs.len());
}

#[test]
fn end_to_end_on_two_topologies() {
    let circuit = Qft::new(16).build();

    let square = square_target(7, 30);
    let compiler = Compiler::for_target(&square)
        .mapping(MappingOptions::hybrid(1.0))
        .build()
        .expect("valid session");
    let program = compiler.compile(&circuit).expect("compiles");
    verify_mapping(&circuit, &program.mapped, &square).expect("verify-clean");
    validate_batches(&program, square.lattice(), compiler.config().initial_layout);

    let zoned = zoned_target(9, 30);
    let compiler = Compiler::for_target(&zoned)
        .mapping(MappingOptions::hybrid(1.0))
        .build()
        .expect("valid session");
    assert_eq!(compiler.target().id, "zoned2+1/mixed");
    let program = compiler.compile(&circuit).expect("compiles on zoned");
    verify_mapping_on(&circuit, &program.mapped, zoned.params(), zoned.lattice())
        .expect("verify-clean on zoned");
    validate_batches(&program, zoned.lattice(), compiler.config().initial_layout);
    // The zoned topology really is different: lane rows hold no atoms.
    assert!(program.mapped.ops.iter().all(|op| match op {
        MappedOp::Shuttle { to, .. } => zoned.lattice().contains(*to),
        _ => true,
    }));
}

#[test]
fn json_job_drives_both_topologies() {
    let qasm = {
        let mut c = Circuit::new(6);
        c.h(0);
        for q in 0..5 {
            c.cx(q, q + 1);
        }
        qasm::to_qasm(&c)
    };
    for topology in [
        "{\"kind\": \"square\"}",
        "{\"kind\": \"zoned\", \"zone_rows\": 2, \"gap_rows\": 1}",
    ] {
        let doc = format!(
            "{{\"version\": 1, \"target\": {{\"preset\": \"mixed\", \"lattice_side\": 7, \
             \"num_atoms\": 20, \"topology\": {topology}}}, \"mapping\": {{\"mode\": \
             \"hybrid\", \"alpha\": 1.0}}, \"circuits\": [{{\"name\": \"chain\", \"qasm\": \
             \"{}\"}}]}}",
            qasm.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        );
        // parse -> compile -> emit -> parse.
        let request = CompileRequest::from_json(&doc).expect("request parses");
        let response = request.run().expect("session builds");
        assert!(
            response.results[0].result.is_ok(),
            "{topology} compile failed"
        );
        let emitted = response.to_json();
        let summary = CompileResponse::summary_from_json(&emitted).expect("response parses");
        assert_eq!(summary.version, 1);
        assert_eq!(summary.results, vec![("chain".to_string(), true, None)]);
        // The request itself round-trips exactly.
        let reparsed = CompileRequest::from_json(&request.to_json()).expect("re-parses");
        assert_eq!(request, reparsed);
    }
}

#[test]
fn builder_rejections_are_typed() {
    let target = square_target(6, 20);
    // Bad alpha.
    assert!(matches!(
        Compiler::for_target(&target)
            .mapping(MappingOptions::hybrid(f64::NAN))
            .build(),
        Err(CompileError::Config(ConfigError::InvalidAlphaRatio { .. }))
    ));
    // Undersized lattice: the full 200-atom preset does not fit a zoned
    // 15x15 box.
    assert!(matches!(
        ZonedTarget::new(HardwareParams::mixed(), 2, 1),
        Err(na_arch::ArchError::TooManyAtoms { .. })
    ));
    // Unknown job version.
    assert!(matches!(
        CompileRequest::from_json("{\"version\": 99, \"circuits\": []}"),
        Err(na_pipeline::RequestError::UnsupportedVersion { found: 99 })
    ));
    // Shuttling on a gate-only target.
    let gate_only_target = TargetSpec::resolve(
        "square/gate-only".into(),
        target.clone(),
        Lattice::new(6),
        AodConstraints::default(),
        NativeGateSet::default().without_shuttling(),
    );
    assert!(matches!(
        Compiler::for_target(&gate_only_target)
            .mapping(MappingOptions::hybrid(1.0))
            .build(),
        Err(CompileError::Config(
            ConfigError::ShuttlingUnsupported { .. }
        ))
    ));
    // ... while gate-only mapping on the same target builds fine.
    assert!(Compiler::for_target(&gate_only_target)
        .mapping(MappingOptions::gate_only())
        .build()
        .is_ok());
}

/// Walking `source()` from a real compile failure reaches the root
/// cause (satellite: error ergonomics audit).
#[test]
fn error_chains_reach_root_causes() {
    let mut bad = square_target(6, 20);
    bad.r_int = -2.0;
    let err = Compiler::for_target(&bad).build().unwrap_err();
    let mut depth = 0;
    let mut cursor: Option<&(dyn std::error::Error + 'static)> = Some(&err);
    let mut messages = Vec::new();
    while let Some(e) = cursor {
        messages.push(e.to_string());
        cursor = e.source();
        depth += 1;
        assert!(depth < 10, "cycle in error chain");
    }
    assert!(depth >= 2, "chain too shallow: {messages:?}");
    assert!(
        messages.last().expect("non-empty").contains("r_int"),
        "root cause lost: {messages:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tier-1 invariants hold on the zoned topology across random
    /// circuits and modes: mapping verifies clean and every lowered AOD
    /// batch validates against the replayed occupancy.
    #[test]
    fn cross_target_invariants(seed in 0u64..40, mode in 0usize..3) {
        let zoned = zoned_target(9, 28);
        let mapping = match mode {
            0 => MappingOptions::hybrid(1.0),
            1 => MappingOptions::gate_only(),
            _ => MappingOptions::shuttle_only(),
        };
        let compiler = Compiler::for_target(&zoned)
            .mapping(mapping)
            .build()
            .expect("valid session");
        let circuit = GraphState::new(18).edges(24).seed(seed).build();
        let program = compiler.compile(&circuit).expect("compiles");
        verify_mapping_on(&circuit, &program.mapped, zoned.params(), zoned.lattice())
            .expect("verify-clean");
        validate_batches(&program, zoned.lattice(), compiler.config().initial_layout);
        // The schedule agrees with a fresh two-pass walk on the same
        // topology.
        let two_pass = Scheduler::for_target(&zoned).schedule_mapped(&program.mapped);
        prop_assert_eq!(&program.schedule, &two_pass);
    }
}
