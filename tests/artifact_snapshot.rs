//! Compiled-artifact snapshot: pins an FNV-1a hash of the mapped op
//! stream (and the item count of the resulting schedule) for a fixed set
//! of circuits on the Table-1 hardware presets, over both trap
//! topologies — once per routing round mode.
//!
//! * `SINGLE_EXPECTED` was recorded immediately **before** the
//!   data-oriented routing-core refactor (journaled candidate
//!   simulation, scratch arenas) and has survived every refactor since:
//!   a green run under [`RoundMode::Single`] proves the single-commit
//!   path still produces byte-for-byte identical artifacts — including
//!   through the batched-sweep refactor that speculative rounds are
//!   built on.
//! * `SPECULATIVE_EXPECTED` pins the artifacts of the
//!   [`RoundMode::Speculative`] default (multi-commit rounds reorder
//!   the routing-op stream where frontier gates are serviced in the
//!   same round); quality parity with single mode is guarded separately
//!   by `tests/hybrid_quality.rs`-style fidelity bounds.
//!
//! A deliberate algorithmic change to routing or scheduling must update
//! the tables in the same PR — the diff then documents the artifact
//! change.

use hybrid_na::prelude::*;

/// FNV-1a 64-bit over the debug rendering of every mapped op plus the
/// schedule shape. Debug formats are stable within this workspace, and
/// every routing-relevant field (atoms, sites, op indices) participates.
fn artifact_hash(program: &CompiledProgram) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for op in program.mapped.iter() {
        eat(format!("{op:?}\n").as_bytes());
    }
    eat(format!(
        "items={} makespan={:.9} batches={}",
        program.schedule.len(),
        program.schedule.makespan_us,
        program.aod_programs.len()
    )
    .as_bytes());
    h
}

fn square(preset: HardwareParams) -> HardwareParams {
    preset
        .to_builder()
        .lattice(6, 3.0)
        .num_atoms(30)
        .build()
        .expect("valid")
}

fn circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("qft-16", Qft::new(16).build()),
        ("graph-20", GraphState::new(20).edges(26).seed(9).build()),
        ("qaoa-16", Qaoa::new(16).edges(20).layers(2).seed(5).build()),
    ]
}

/// `(target, mode, circuit) -> artifact hash` under [`RoundMode::Single`],
/// recorded pre-refactor and unchanged since.
const SINGLE_EXPECTED: &[(&str, &str, &str, u64)] = &[
    ("square/mixed", "hybrid", "qft-16", 0xfe84b122ca740d50),
    ("square/mixed", "hybrid", "graph-20", 0x3648e9ab433f4c8b),
    ("square/mixed", "hybrid", "qaoa-16", 0xdc51785be10b8cfd),
    ("square/gate_based", "gate", "qft-16", 0x68c48f141472f4e3),
    ("square/gate_based", "gate", "graph-20", 0x60440d0368e3d885),
    ("square/gate_based", "gate", "qaoa-16", 0x770a82797ae481ee),
    ("square/shuttling", "shuttle", "qft-16", 0xb3863253d8652281),
    (
        "square/shuttling",
        "shuttle",
        "graph-20",
        0x40ab351c2ef05ae2,
    ),
    ("square/shuttling", "shuttle", "qaoa-16", 0x19918b696a00efd3),
    ("zoned/mixed", "hybrid", "qft-16", 0xbdafd78d86504a3c),
    ("zoned/mixed", "hybrid", "graph-20", 0xcf7b0d6ca2309936),
    ("zoned/mixed", "hybrid", "qaoa-16", 0x1a2c94d2bc6c49a3),
];

/// `(target, mode, circuit) -> artifact hash` under the
/// [`RoundMode::Speculative`] default. Two gate-based-preset rows
/// (graph-20, qaoa-16) are identical to `SINGLE_EXPECTED` — those runs
/// never found a second improving non-conflicting candidate. Every
/// other row reflects multi-commit reordering of the routing-op stream
/// produced by the eligible-restricted batched sweep.
const SPECULATIVE_EXPECTED: &[(&str, &str, &str, u64)] = &[
    ("square/mixed", "hybrid", "qft-16", 0x0051e23c324e04ec),
    ("square/mixed", "hybrid", "graph-20", 0xde52b478f346d2e5),
    ("square/mixed", "hybrid", "qaoa-16", 0x50a3e784c00e614e),
    ("square/gate_based", "gate", "qft-16", 0xf76126f02e1f1baf),
    ("square/gate_based", "gate", "graph-20", 0x60440d0368e3d885),
    ("square/gate_based", "gate", "qaoa-16", 0x770a82797ae481ee),
    ("square/shuttling", "shuttle", "qft-16", 0x6e90c433de4ed23e),
    (
        "square/shuttling",
        "shuttle",
        "graph-20",
        0xfeefe369a166acc1,
    ),
    ("square/shuttling", "shuttle", "qaoa-16", 0x251631a45b39f11e),
    ("zoned/mixed", "hybrid", "qft-16", 0x4c40af34b11fcde1),
    ("zoned/mixed", "hybrid", "graph-20", 0x05dc447b7101b84f),
    ("zoned/mixed", "hybrid", "qaoa-16", 0xdd2990970c69871e),
];

fn options(mode: &str) -> MappingOptions {
    match mode {
        "hybrid" => MappingOptions::hybrid(1.0),
        "gate" => MappingOptions::gate_only(),
        "shuttle" => MappingOptions::shuttle_only(),
        other => panic!("unknown mode {other}"),
    }
}

fn compile_all(round_mode: RoundMode) -> Vec<(String, String, String, u64)> {
    let mut rows = Vec::new();
    let targets: Vec<(&str, &str, Box<dyn Target>)> = vec![
        (
            "square/mixed",
            "hybrid",
            Box::new(square(HardwareParams::mixed())),
        ),
        (
            "square/gate_based",
            "gate",
            Box::new(square(HardwareParams::gate_based())),
        ),
        (
            "square/shuttling",
            "shuttle",
            Box::new(square(HardwareParams::shuttling())),
        ),
        (
            "zoned/mixed",
            "hybrid",
            Box::new(
                ZonedTarget::new(
                    HardwareParams::mixed()
                        .to_builder()
                        .lattice(8, 3.0)
                        .num_atoms(30)
                        .build()
                        .expect("valid"),
                    2,
                    1,
                )
                .expect("fits"),
            ),
        ),
    ];
    for (tname, mode, target) in &targets {
        let compiler = Compiler::for_target(target.as_ref())
            .mapping(options(mode).with_round_mode(round_mode))
            .build()
            .expect("valid session");
        for (cname, circuit) in circuits() {
            let program = compiler.compile(&circuit).expect("compiles");
            rows.push((
                tname.to_string(),
                mode.to_string(),
                cname.to_string(),
                artifact_hash(&program),
            ));
        }
    }
    rows
}

fn assert_snapshot(round_mode: RoundMode, expected: &[(&str, &str, &str, u64)], label: &str) {
    let actual = compile_all(round_mode);
    let mut failures = Vec::new();
    for (target, mode, circuit, hash) in &actual {
        let row = expected
            .iter()
            .find(|(t, m, c, _)| t == target && m == mode && c == circuit);
        match row {
            Some((_, _, _, e)) if e == hash => {}
            Some((_, _, _, e)) => failures.push(format!(
                "{target} {mode} {circuit}: {hash:#018x} != {e:#018x}"
            )),
            None => failures.push(format!("{target} {mode} {circuit}: not in snapshot")),
        }
    }
    assert!(
        failures.is_empty(),
        "artifact drift vs {label} snapshot:\n  {}\nfull actual table:\n{}",
        failures.join("\n  "),
        actual
            .iter()
            .map(|(t, m, c, h)| format!("    (\"{t}\", \"{m}\", \"{c}\", {h:#018x}),"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn compiled_artifacts_match_pre_refactor_snapshot() {
    assert_snapshot(
        RoundMode::Single,
        SINGLE_EXPECTED,
        "pre-refactor single-mode",
    );
}

#[test]
fn speculative_artifacts_match_pinned_snapshot() {
    assert_snapshot(
        RoundMode::Speculative,
        SPECULATIVE_EXPECTED,
        "speculative-mode",
    );
}
