//! End-to-end integration tests: circuit generation → hybrid mapping →
//! verification → scheduling → metrics, across hardware presets and
//! compiler modes.

use hybrid_na::prelude::*;

fn scaled(preset: HardwareParams, side: u32, atoms: u32) -> HardwareParams {
    preset
        .to_builder()
        .lattice(side, 3.0)
        .num_atoms(atoms)
        .build()
        .expect("valid preset")
}

fn all_modes() -> Vec<(&'static str, MapperConfig)> {
    vec![
        ("shuttle-only", MapperConfig::shuttle_only()),
        ("gate-only", MapperConfig::gate_only()),
        (
            "hybrid",
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        ),
    ]
}

fn suite() -> Vec<(&'static str, Circuit)> {
    vec![
        ("graph", GraphState::new(30).edges(36).seed(7).build()),
        ("qft", Qft::new(24).build()),
        ("qpe", Qpe::new(20).build()),
        (
            "reversible",
            Reversible::new(20)
                .counts(&[(2, 20), (3, 15), (4, 5)])
                .seed(3)
                .build(),
        ),
        (
            "random",
            RandomCircuit::new(25)
                .layers(8)
                .multi_qubit_fraction(0.25)
                .seed(99)
                .build(),
        ),
    ]
}

#[test]
fn every_mode_maps_and_verifies_every_benchmark() {
    for preset in HardwareParams::table1_presets() {
        let params = scaled(preset, 7, 35);
        let scheduler = Scheduler::new(params.clone());
        for (mode, config) in all_modes() {
            for (name, circuit) in suite() {
                let mapper =
                    HybridMapper::new(params.clone(), config.clone()).expect("valid params");
                let outcome = mapper
                    .map(&circuit)
                    .unwrap_or_else(|e| panic!("{}/{mode}/{name}: {e}", params.name));
                verify_mapping(&circuit, &outcome.mapped, &params)
                    .unwrap_or_else(|e| panic!("{}/{mode}/{name}: {e}", params.name));
                let report = scheduler.compare(&circuit, &outcome.mapped);
                // Tiny negative slack: mapped emission order and the
                // baseline's topological order may pack marginally
                // differently.
                assert!(
                    report.delta_t_us >= -1.0,
                    "{}/{mode}/{name}: mapped circuit faster than original?",
                    params.name
                );
                assert!(
                    report.delta_f >= -0.01,
                    "{}/{mode}/{name}: mapping gained fidelity?",
                    params.name
                );
            }
        }
    }
}

#[test]
fn shuttle_only_never_adds_cz() {
    let params = scaled(HardwareParams::shuttling(), 7, 35);
    let scheduler = Scheduler::new(params.clone());
    for (name, circuit) in suite() {
        let mapper = HybridMapper::new(params.clone(), MapperConfig::shuttle_only()).unwrap();
        let outcome = mapper.map(&circuit).unwrap();
        let report = scheduler.compare(&circuit, &outcome.mapped);
        assert_eq!(report.delta_cz, 0, "{name}: shuttle-only must keep ΔCZ = 0");
        assert_eq!(outcome.mapped.swap_count(), 0);
    }
}

#[test]
fn gate_only_never_moves_atoms() {
    let params = scaled(HardwareParams::gate_based(), 7, 35);
    for (name, circuit) in suite() {
        let mapper = HybridMapper::new(params.clone(), MapperConfig::gate_only()).unwrap();
        let outcome = mapper.map(&circuit).unwrap();
        assert_eq!(
            outcome.mapped.shuttle_count(),
            0,
            "{name}: gate-only must not shuttle"
        );
    }
}

#[test]
fn hybrid_tracks_the_better_pure_mode_on_biased_hardware() {
    // On strongly biased hardware the hybrid mapper must identify the
    // preferred capability (paper §4.2, rows (1) and (2)).
    for (preset, best_mode) in [
        (HardwareParams::shuttling(), "shuttle-only"),
        (HardwareParams::gate_based(), "gate-only"),
    ] {
        let params = scaled(preset, 7, 35);
        let scheduler = Scheduler::new(params.clone());
        let circuit = Qft::new(24).build();
        let mut results = std::collections::HashMap::new();
        for (mode, config) in all_modes() {
            let mapper = HybridMapper::new(params.clone(), config).unwrap();
            let outcome = mapper.map(&circuit).unwrap();
            let report = scheduler.compare(&circuit, &outcome.mapped);
            results.insert(mode, report.delta_f);
        }
        let hybrid = results["hybrid"];
        let best_pure = results[best_mode];
        assert!(
            hybrid <= best_pure * 1.2 + 1e-9,
            "{}: hybrid δF {hybrid} should track {best_mode} δF {best_pure}",
            params.name
        );
    }
}

#[test]
fn decomposed_gates_preserve_counts_through_pipeline() {
    let params = scaled(HardwareParams::mixed(), 7, 30);
    let circuit = Reversible::new(24)
        .counts(&[(2, 12), (3, 18), (4, 4)])
        .seed(5)
        .build();
    let native = decompose_to_native(&circuit);
    let mapper = HybridMapper::new(
        params.clone(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .unwrap();
    let outcome = mapper.map(&circuit).unwrap();
    assert_eq!(outcome.mapped.gate_count(), native.len());

    // ΔCZ reported by the scheduler equals 3x the inserted SWAP count.
    let scheduler = Scheduler::new(params);
    let report = scheduler.compare(&circuit, &outcome.mapped);
    assert_eq!(report.delta_cz as usize, 3 * outcome.mapped.swap_count());
}

#[test]
fn runtime_is_reported() {
    let params = scaled(HardwareParams::mixed(), 6, 20);
    let mapper =
        HybridMapper::new(params, MapperConfig::try_hybrid(1.0).expect("valid alpha")).unwrap();
    let outcome = mapper.map(&Qft::new(16).build()).unwrap();
    assert!(outcome.runtime.as_nanos() > 0);
}

#[test]
fn facade_prelude_covers_whole_pipeline() {
    // Compile-time check that the prelude exposes everything a user needs.
    let params = HardwareParams::default()
        .to_builder()
        .lattice(5, 3.0)
        .num_atoms(12)
        .build()
        .unwrap();
    let circuit = GraphState::new(10).edges(12).seed(0).build();
    let outcome = HybridMapper::new(params.clone(), MapperConfig::default())
        .unwrap()
        .map(&circuit)
        .unwrap();
    verify_mapping(&circuit, &outcome.mapped, &params).unwrap();
    let _report: ComparisonReport = Scheduler::new(params).compare(&circuit, &outcome.mapped);
}
