//! Integration tests for initial layouts and the statevector oracle at
//! the facade level.

use hybrid_na::mapper::verify::verify_unitary_equivalence;
use hybrid_na::prelude::*;

fn params(side: u32, atoms: u32) -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(side, 3.0)
        .num_atoms(atoms)
        .build()
        .expect("valid")
}

#[test]
fn all_layouts_map_and_verify() {
    let p = params(5, 16);
    let circuit = Qaoa::new(12).layers(2).seed(3).build();
    for layout in [
        InitialLayout::Identity,
        InitialLayout::CenterCompact,
        InitialLayout::Random(11),
    ] {
        for config in [
            MapperConfig::shuttle_only().with_initial_layout(layout),
            MapperConfig::gate_only().with_initial_layout(layout),
            MapperConfig::try_hybrid(1.0)
                .expect("valid alpha")
                .with_initial_layout(layout),
        ] {
            let outcome = HybridMapper::new(p.clone(), config)
                .unwrap()
                .map(&circuit)
                .unwrap_or_else(|e| panic!("{layout:?}: {e}"));
            assert_eq!(outcome.mapped.layout, layout);
            verify_mapping(&circuit, &outcome.mapped, &p)
                .unwrap_or_else(|e| panic!("{layout:?}: {e}"));
            verify_unitary_equivalence(&circuit, &outcome.mapped, &p)
                .unwrap_or_else(|e| panic!("{layout:?}: {e}"));
        }
    }
}

#[test]
fn unitary_oracle_holds_for_structured_workloads() {
    let p = params(5, 14);
    let workloads: Vec<(&str, Circuit)> = vec![
        ("ghz", ghz(12)),
        ("adder", cuccaro_adder(5)), // 12 qubits, deep Toffoli ladder
        ("qft", Qft::new(12).build()),
        (
            "reversible",
            Reversible::new(12)
                .counts(&[(2, 8), (3, 8), (4, 3)])
                .seed(2)
                .build(),
        ),
    ];
    for (name, circuit) in workloads {
        let outcome = HybridMapper::new(
            p.clone(),
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        )
        .unwrap()
        .map(&circuit)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        verify_unitary_equivalence(&circuit, &outcome.mapped, &p)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn adder_still_adds_after_mapping() {
    // Functional end-to-end: prepare classical inputs, map the adder,
    // replay the mapped stream as an atom circuit, and read the sum off
    // the final qubit positions.
    let p = params(4, 12);
    let bits = 2u32;
    let (a_val, b_val) = (3u32, 2u32);
    let mut circuit = Circuit::new(2 * bits + 2);
    for i in 0..bits {
        if a_val >> i & 1 == 1 {
            circuit.x(1 + 2 * i);
        }
        if b_val >> i & 1 == 1 {
            circuit.x(2 + 2 * i);
        }
    }
    circuit.extend_from(&cuccaro_adder(bits));

    let outcome = HybridMapper::new(
        p.clone(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .unwrap()
    .map(&circuit)
    .unwrap();
    // The unitary oracle subsumes the functional check (it compares
    // against the simulated original, which the adder truth-table test
    // in na-circuit already validates).
    verify_unitary_equivalence(&circuit, &outcome.mapped, &p).unwrap();
}

#[test]
fn qasm_import_maps_like_builder_circuit() {
    let p = params(5, 14);
    let circuit = Qft::new(10).build();
    let reimported = qasm::from_qasm(&qasm::to_qasm(&circuit)).unwrap();
    let mapper = HybridMapper::new(p.clone(), MapperConfig::gate_only()).unwrap();
    let a = mapper.map(&circuit).unwrap();
    let b = mapper.map(&reimported).unwrap();
    assert_eq!(
        a.mapped, b.mapped,
        "mapping must be deterministic across I/O"
    );
}

#[test]
fn simulator_matches_mapped_probabilities() {
    // Independent cross-check of the oracle machinery itself: simulate
    // original and mapped-as-atom-circuit states and compare one marginal.
    let p = params(4, 10);
    let circuit = ghz(8);
    let outcome = HybridMapper::new(p.clone(), MapperConfig::shuttle_only())
        .unwrap()
        .map(&circuit)
        .unwrap();
    verify_unitary_equivalence(&circuit, &outcome.mapped, &p).unwrap();
    let psi = Statevector::simulate(&circuit);
    assert!((psi.probability(0) - 0.5).abs() < 1e-9);
}
