//! Hybrid gate/shuttling circuit mapping for neutral-atom quantum
//! computers — a Rust reproduction of Schmid et al., DAC 2024
//! (arXiv:2311.14164).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`arch`] — hardware model: lattice, interaction geometry, AOD
//!   shuttling constraints, Table 1c parameter presets,
//! * [`circuit`] — circuit IR, commutation-aware DAG, benchmark
//!   generators, native-gate decomposition,
//! * [`mapper`] — the hybrid mapper (the paper's contribution),
//! * [`schedule`] — ASAP scheduler with restriction constraints, AOD
//!   batching, and the Eq. (1) fidelity metrics,
//! * [`pipeline`] — the fused compile pipeline: map → schedule → AOD
//!   lowering → metrics as one pass producing one
//!   [`CompiledProgram`](na_pipeline::CompiledProgram) per circuit, with
//!   a multi-threaded batch front-end.
//!
//! # Quickstart
//!
//! ```
//! use hybrid_na::prelude::*;
//!
//! // Mixed hardware (Table 1c) scaled down to a 6x6 lattice.
//! let params = HardwareParams::mixed()
//!     .to_builder()
//!     .lattice(6, 3.0)
//!     .num_atoms(30)
//!     .build()?;
//!
//! // Compile a 24-qubit QFT in hybrid mode: one fused pass yields the
//! // mapped stream, the restriction-aware schedule, validated AOD
//! // programs, the Eq. (1) metrics and the Table 1a comparison.
//! let pipeline = Pipeline::new(params, MapperConfig::hybrid(1.0))?;
//! let program = pipeline.compile(&Qft::new(24).build())?;
//!
//! let report = program.comparison.expect("baseline comparison is on by default");
//! println!(
//!     "ΔCZ = {}, ΔT = {:.1} µs, δF = {:.3}, {} AOD batches",
//!     report.delta_cz, report.delta_t_us, report.delta_f,
//!     program.stats.aod_batches,
//! );
//! // Export everything as one JSON document.
//! let json = program.to_json();
//! assert!(json.contains("\"metrics\""));
//!
//! // Batches fan out across threads, results stay in input order.
//! let circuits = vec![Qft::new(12).build(), Qft::new(16).build()];
//! let compiled = pipeline.compile_batch(&circuits, 2);
//! assert!(compiled.iter().all(|r| r.is_ok()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use na_arch as arch;
pub use na_circuit as circuit;
pub use na_mapper as mapper;
pub use na_pipeline as pipeline;
pub use na_schedule as schedule;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use na_arch::{HardwareParams, Lattice, Move, Neighborhood, Site};
    pub use na_circuit::generators::{
        cuccaro_adder, ghz, GraphState, Qaoa, Qft, Qpe, RandomCircuit, Reversible,
    };
    pub use na_circuit::sim::Statevector;
    pub use na_circuit::{decompose_to_native, qasm, Circuit, GateKind, Operation, Qubit};
    pub use na_mapper::{
        verify_mapping, HybridMapper, InitialLayout, MapError, MappedCircuit, MappedOp,
        MapperConfig, MappingOutcome, OpSink,
    };
    pub use na_pipeline::{CompileStats, CompiledProgram, Pipeline, PipelineError};
    pub use na_schedule::{
        ComparisonReport, IncrementalScheduler, Schedule, ScheduleMetrics, Scheduler,
    };
}
