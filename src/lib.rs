//! Hybrid gate/shuttling circuit mapping for neutral-atom quantum
//! computers — a Rust reproduction of Schmid et al., DAC 2024
//! (arXiv:2311.14164).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`arch`] — hardware model: lattice, interaction geometry, AOD
//!   shuttling constraints, Table 1c parameter presets,
//! * [`circuit`] — circuit IR, commutation-aware DAG, benchmark
//!   generators, native-gate decomposition,
//! * [`mapper`] — the hybrid mapper (the paper's contribution),
//! * [`schedule`] — ASAP scheduler with restriction constraints, AOD
//!   batching, and the Eq. (1) fidelity metrics.
//!
//! # Quickstart
//!
//! ```
//! use hybrid_na::prelude::*;
//!
//! // Mixed hardware (Table 1c) scaled down to a 6x6 lattice.
//! let params = HardwareParams::mixed()
//!     .to_builder()
//!     .lattice(6, 3.0)
//!     .num_atoms(30)
//!     .build()?;
//!
//! // A 24-qubit QFT, mapped in hybrid mode.
//! let circuit = Qft::new(24).build();
//! let mapper = HybridMapper::new(params.clone(), MapperConfig::hybrid(1.0))?;
//! let outcome = mapper.map(&circuit)?;
//!
//! // Schedule both versions and read off the Table 1a quantities.
//! let report = Scheduler::new(params).compare(&circuit, &outcome.mapped);
//! println!(
//!     "ΔCZ = {}, ΔT = {:.1} µs, δF = {:.3}",
//!     report.delta_cz, report.delta_t_us, report.delta_f
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use na_arch as arch;
pub use na_circuit as circuit;
pub use na_mapper as mapper;
pub use na_schedule as schedule;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use na_arch::{HardwareParams, Lattice, Move, Neighborhood, Site};
    pub use na_circuit::generators::{
        cuccaro_adder, ghz, GraphState, Qaoa, Qft, Qpe, RandomCircuit, Reversible,
    };
    pub use na_circuit::sim::Statevector;
    pub use na_circuit::{decompose_to_native, qasm, Circuit, GateKind, Operation, Qubit};
    pub use na_mapper::{
        verify_mapping, HybridMapper, InitialLayout, MapError, MappedCircuit, MappedOp,
        MapperConfig, MappingOutcome,
    };
    pub use na_schedule::{ComparisonReport, Schedule, ScheduleMetrics, Scheduler};
}
