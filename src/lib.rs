//! Hybrid gate/shuttling circuit mapping for neutral-atom quantum
//! computers — a Rust reproduction of Schmid et al., DAC 2024
//! (arXiv:2311.14164).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`arch`] — hardware model: trap topologies (square and zoned
//!   layouts), interaction geometry, AOD shuttling constraints, Table 1c
//!   parameter presets, and the [`Target`](na_arch::Target) trait
//!   describing a compiler backend,
//! * [`circuit`] — circuit IR, commutation-aware DAG, benchmark
//!   generators, native-gate decomposition,
//! * [`mapper`] — the hybrid mapper (the paper's contribution),
//! * [`schedule`] — ASAP scheduler with restriction constraints, AOD
//!   batching, and the Eq. (1) fidelity metrics,
//! * [`pipeline`] — the compile front-end: target-bound
//!   [`Compiler`](na_pipeline::Compiler) sessions running map →
//!   schedule → AOD lowering → metrics as one fused pass, a
//!   multi-threaded batch interface, and the versioned JSON job layer
//!   ([`na_pipeline::job`]).
//!
//! # Quickstart
//!
//! ```
//! use hybrid_na::prelude::*;
//!
//! // A backend target: mixed hardware (Table 1c) scaled down to a 6x6
//! // lattice. `HardwareParams` IS a (square-lattice) `Target`; zoned
//! // storage/interaction layouts come from `ZonedTarget`.
//! let target = HardwareParams::mixed()
//!     .to_builder()
//!     .lattice(6, 3.0)
//!     .num_atoms(30)
//!     .build()?;
//!
//! // A compiler session: every option validated at build time, typed
//! // `CompileError`s instead of construction panics.
//! let compiler = Compiler::for_target(&target)
//!     .mapping(MappingOptions::hybrid(1.0))
//!     .baseline(true)
//!     .build()?;
//!
//! // One fused pass yields the mapped stream, the restriction-aware
//! // schedule, validated AOD programs, the Eq. (1) metrics and the
//! // Table 1a comparison.
//! let program = compiler.compile(&Qft::new(24).build())?;
//! let report = program.comparison.expect("baseline comparison is on by default");
//! println!(
//!     "ΔCZ = {}, ΔT = {:.1} µs, δF = {:.3}, {} AOD batches",
//!     report.delta_cz, report.delta_t_us, report.delta_f,
//!     program.stats.aod_batches,
//! );
//! // Export everything as one JSON document.
//! let json = program.to_json();
//! assert!(json.contains("\"metrics\""));
//!
//! // Batches fan out across threads, results stay in input order.
//! let circuits = vec![Qft::new(12).build(), Qft::new(16).build()];
//! let compiled = compiler.compile_batch(&circuits, 2);
//! assert!(compiled.iter().all(|r| r.is_ok()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! A service front-end drives the same session from one JSON document
//! in and one out (`na_pipeline::handle_json`), and [`serve`] turns
//! that into a long-running job server — worker pool with warm scratch
//! arenas, content-addressed artifact cache, queue-cap backpressure,
//! HTTP/1.1 and stdio transports (`na-serve` binary), plus a
//! resilience layer: request deadlines with cooperative cancellation
//! ([`na_mapper::CancelToken`]), per-job panic isolation with a
//! self-healing worker pool, deadline-aware admission shedding, and a
//! deterministic fault-injection harness
//! ([`na_serve::FaultPlan`]). The legacy `Pipeline::new(params,
//! config)` entry point remains as a deprecated shim.

pub use na_arch as arch;
pub use na_circuit as circuit;
pub use na_mapper as mapper;
pub use na_pipeline as pipeline;
pub use na_schedule as schedule;
pub use na_serve as serve;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use na_arch::{
        AodConstraints, HardwareParams, Lattice, LatticeKind, Move, NativeGateSet, NeighborTable,
        Neighborhood, RegionGrid, Site, Target, TargetSpec, ZonedTarget,
    };
    pub use na_circuit::generators::{
        cuccaro_adder, ghz, GraphState, Qaoa, Qft, Qpe, RandomCircuit, Reversible,
    };
    pub use na_circuit::sim::Statevector;
    pub use na_circuit::{decompose_to_native, qasm, Circuit, GateKind, Operation, Qubit};
    pub use na_mapper::{
        verify_mapping, verify_mapping_on, CacheStats, CancelReason, CancelToken, ConfigError,
        DistanceCache, HybridMapper, InitialLayout, MapError, MapScratch, MappedCircuit, MappedOp,
        MapperConfig, MappingOutcome, OpSink, RoundMode, StateJournal,
    };
    pub use na_pipeline::{
        error_to_json, handle_json, handle_json_document, with_request_id, CompileError,
        CompileRequest, CompileResponse, CompileScratch, CompileStats, CompiledProgram, Compiler,
        MappingOptions, Pipeline, PipelineError, SchedulingOptions, TargetResolver,
    };
    pub use na_schedule::{
        ComparisonReport, IncrementalScheduler, Schedule, ScheduleError, ScheduleMetrics, Scheduler,
    };
    pub use na_serve::{
        serve_lines, CompileService, FaultPlan, HttpOptions, HttpServer, RetryPolicy, ServeConfig,
        SubmitError,
    };
}
